package experiments

import (
	"fmt"
	"time"

	"thor/internal/core"
	"thor/internal/vector"
)

// KernelResult reports the clustering hot-path micro-benchmark: the cost
// of the pairwise cosine and the centroid build on the string-keyed
// Sparse kernels versus the interned int32-ID kernels, over the tag
// signatures of a probed corpus — the exact vectors phase one clusters.
// BitIdentical records that every interned cosine equaled its string
// counterpart bit for bit, so the speedup buys no accuracy change.
type KernelResult struct {
	Pages int
	// Pairs is the number of within-collection cosine pairs timed (the
	// production pairwise pattern: clustering never crosses sites).
	Pairs int
	// Passes is how many times each measurement loop ran.
	Passes             int
	StringNsPerPair    float64
	InternedNsPerPair  float64
	CosineSpeedup      float64
	StringCentroidNs   float64
	InternedCentroidNs float64
	CentroidSpeedup    float64
	BitIdentical       bool
}

// String renders the comparison.
func (r *KernelResult) String() string {
	return fmt.Sprintf(
		"Similarity-kernel micro-benchmark: string vs interned (TFIDF tag signatures)\n"+
			"  %d pages, %d within-collection cosine pairs, %d passes\n"+
			"  cosine:   string %.1f ns/pair, interned %.1f ns/pair (%.1fx)\n"+
			"  centroid: string %.0f ns/build, interned %.0f ns/build (%.1fx)\n"+
			"  interned cosines bit-identical to string path: %v\n",
		r.Pages, r.Pairs, r.Passes,
		r.StringNsPerPair, r.InternedNsPerPair, r.CosineSpeedup,
		r.StringCentroidNs, r.InternedCentroidNs, r.CentroidSpeedup,
		r.BitIdentical)
}

// KernelBenchmark measures both kernel families on the corpus the other
// figures use. Each collection's pages are weighted once down both
// paths; the timed loops then run the production access patterns —
// all within-collection cosine pairs, and one all-member centroid per
// collection — several passes each.
func KernelBenchmark(o Options) *KernelResult {
	corp := BuildCorpus(o)

	type colVecs struct {
		vecs []vector.Sparse
		iv   vector.Interned
	}
	cols := make([]colVecs, 0, len(corp.Collections))
	pages, pairs := 0, 0
	for _, col := range corp.Collections {
		docs := core.TagSignatures(col.Pages)
		cols = append(cols, colVecs{vecs: vector.TFIDF(docs), iv: vector.TFIDFInterned(docs)})
		n := len(col.Pages)
		pages += n
		pairs += n * (n - 1) / 2
	}

	const passes = 3
	var sink float64

	start := time.Now()
	for p := 0; p < passes; p++ {
		for _, c := range cols {
			for i := range c.vecs {
				for j := i + 1; j < len(c.vecs); j++ {
					sink += vector.Cosine(c.vecs[i], c.vecs[j])
				}
			}
		}
	}
	stringPair := time.Since(start)

	start = time.Now()
	for p := 0; p < passes; p++ {
		for _, c := range cols {
			for i := range c.iv.Vecs {
				for j := i + 1; j < len(c.iv.Vecs); j++ {
					sink += c.iv.Vecs[i].Cosine(c.iv.Vecs[j])
				}
			}
		}
	}
	internedPair := time.Since(start)

	start = time.Now()
	for p := 0; p < passes; p++ {
		for _, c := range cols {
			sink += vector.Centroid(c.vecs).Norm()
		}
	}
	stringCentroid := time.Since(start)

	start = time.Now()
	for p := 0; p < passes; p++ {
		for _, c := range cols {
			sink += vector.CentroidInterned(c.iv.Vecs, c.iv.Dict.Len()).Norm()
		}
	}
	internedCentroid := time.Since(start)
	_ = sink // defeats dead-code elimination of the timed loops

	bitIdentical := true
	for _, c := range cols {
		for i := range c.vecs {
			for j := i + 1; j < len(c.vecs); j++ {
				if c.iv.Vecs[i].Cosine(c.iv.Vecs[j]) != vector.Cosine(c.vecs[i], c.vecs[j]) { //thorlint:allow no-float-eq bit-identity is the property being reported
					bitIdentical = false
				}
			}
		}
	}

	nPairs := float64(pairs * passes)
	nBuilds := float64(len(cols) * passes)
	r := &KernelResult{
		Pages:              pages,
		Pairs:              pairs,
		Passes:             passes,
		StringNsPerPair:    float64(stringPair.Nanoseconds()) / nPairs,
		InternedNsPerPair:  float64(internedPair.Nanoseconds()) / nPairs,
		StringCentroidNs:   float64(stringCentroid.Nanoseconds()) / nBuilds,
		InternedCentroidNs: float64(internedCentroid.Nanoseconds()) / nBuilds,
		BitIdentical:       bitIdentical,
	}
	if r.InternedNsPerPair > 0 {
		r.CosineSpeedup = r.StringNsPerPair / r.InternedNsPerPair
	}
	if r.InternedCentroidNs > 0 {
		r.CentroidSpeedup = r.StringCentroidNs / r.InternedCentroidNs
	}
	return r
}
