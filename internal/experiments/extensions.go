package experiments

import (
	"fmt"

	"thor/internal/cluster"
	"thor/internal/core"
	"thor/internal/corpus"
	"thor/internal/deepweb"
	"thor/internal/probe"
	"thor/internal/quality"
	"thor/internal/vector"
)

// MultiRegionAblation studies sites with two primary content regions (the
// multiple-QA-Pagelet case Section 1 raises): the same corpus of
// two-region sites is extracted with NumPagelets 1, 2, and 3. One
// selection caps recall near 50%; two selections recover both regions;
// a third selection can only hurt precision.
func MultiRegionAblation(o Options) *TableResult {
	sites := make([]*deepweb.Site, o.Sites)
	for i := range sites {
		sites[i] = deepweb.NewSite(deepweb.SiteConfig{ID: i, Seed: o.Seed, MultiRegion: true})
	}
	plan := probe.NewPlan(o.DictWords, o.Nonsense, o.Seed+1000)
	prober := &probe.Prober{Plan: plan, Labeler: deepweb.Labeler()}
	corp := prober.ProbeAll(deepweb.AsProbeSites(sites))

	res := &TableResult{
		Title:  "multi-region ablation: P/R vs QA-Pagelets selected per cluster (two-region sites)",
		Header: []string{"precision", "recall", "f1"},
	}
	for _, num := range []int{1, 2, 3} {
		var counter quality.Counter
		for _, col := range corp.Collections {
			cfg := core.DefaultConfig()
			cfg.NumPagelets = num
			cfg.Restarts = o.KMRestarts
			cfg.Seed = o.Seed + int64(col.SiteID)
			r := core.NewExtractor(cfg).Extract(col.Pages)
			c, i, t := core.Score(r.Pagelets, col.Pages)
			counter.Add(c, i, t)
		}
		pr := counter.PR()
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("pagelets=%d", num),
			Values: []float64{pr.Precision, pr.Recall, pr.F1()},
		})
	}
	return res
}

// BisectingAblation compares plain K-Means (the paper's choice) against
// bisecting K-Means (Steinbach et al. [29]) on the page clustering task:
// average entropy over the corpus for both, at the paper's k.
func BisectingAblation(o Options) *TableResult {
	corp := BuildCorpus(o)
	res := &TableResult{
		Title:  "clusterer ablation: plain vs bisecting K-Means (TFIDF tag signatures)",
		Header: []string{"entropy", "purity"},
	}
	// Both variants come from the clusterer registry — the ablation is a
	// two-name slice away from covering any other registered algorithm.
	for _, name := range []string{"kmeans", "bisecting"} {
		c, err := cluster.MustLookup(name)
		if err != nil {
			//thorlint:allow no-panic-in-lib programmer-error guard; both names are registered builtins
			panic("experiments: " + err.Error())
		}
		var entSum, purSum float64
		for _, col := range corp.Collections {
			pages := col.Pages
			interned := cluster.Memo(func() vector.Interned {
				return vector.TFIDFInterned(core.TagSignatures(pages))
			})
			in := cluster.Input{
				N:        len(pages),
				Interned: interned,
				Vecs:     cluster.Memo(func() []vector.Sparse { return interned().ToSparse() }),
			}
			r, err := c.Cluster(in, cluster.Config{K: o.K, Restarts: o.KMRestarts, Seed: o.Seed + int64(col.SiteID)})
			if err != nil {
				//thorlint:allow no-panic-in-lib programmer-error guard; both clusterers consume the vector view, which is present
				panic("experiments: " + err.Error())
			}
			entSum += quality.Entropy(r.Clustering, col.Labels(), int(corpus.NumClasses))
			purSum += quality.Purity(r.Clustering, col.Labels(), int(corpus.NumClasses))
		}
		n := float64(len(corp.Collections))
		res.Rows = append(res.Rows, Row{
			Label:  name,
			Values: []float64{entSum / n, purSum / n},
		})
	}
	return res
}

// AdaptiveProbingAblation compares the fixed probing plan against the
// adaptive feedback prober: pages collected, answer-page share, and
// distinct answer templates sampled per plan, averaged over sites. The
// adaptive round probes vocabulary mined from answer pages, so its probes
// hit the database far more often than dictionary draws.
func AdaptiveProbingAblation(o Options) *TableResult {
	sites := deepweb.NewSites(o.Sites, o.Seed)
	plan := probe.NewPlan(o.DictWords, o.Nonsense, o.Seed+1000)

	res := &TableResult{
		Title:  "probing ablation: fixed plan vs adaptive feedback round",
		Header: []string{"pages", "answer-share", "hit-rate"},
	}

	fixed := &probe.Prober{Plan: plan, Labeler: deepweb.Labeler()}
	var fixedPages, fixedAnswers int
	for _, s := range sites {
		col := fixed.ProbeSite(s)
		fixedPages += len(col.Pages)
		fixedAnswers += len(col.PageletBearing())
	}
	res.Rows = append(res.Rows, Row{
		Label: "fixed",
		Values: []float64{
			float64(fixedPages) / float64(len(sites)),
			float64(fixedAnswers) / float64(fixedPages),
			float64(fixedAnswers) / float64(fixedPages),
		},
	})

	adaptive := &probe.AdaptiveProber{Plan: plan, Labeler: deepweb.Labeler(), FeedbackProbes: 20}
	var adPages, adAnswers, fbProbes, fbHits int
	for _, s := range sites {
		col := adaptive.ProbeSite(s)
		adPages += len(col.Pages)
		adAnswers += len(col.PageletBearing())
		for _, p := range col.Pages[len(plan.Keywords()):] {
			fbProbes++
			if p.Class.HasPagelets() {
				fbHits++
			}
		}
	}
	hitRate := 0.0
	if fbProbes > 0 {
		hitRate = float64(fbHits) / float64(fbProbes)
	}
	res.Rows = append(res.Rows, Row{
		Label: "adaptive",
		Values: []float64{
			float64(adPages) / float64(len(sites)),
			float64(adAnswers) / float64(adPages),
			hitRate,
		},
	})
	res.Notes = append(res.Notes,
		"hit-rate: answer share of all probes (fixed) vs of the feedback probes only (adaptive)")
	return res
}
