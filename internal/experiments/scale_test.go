package experiments

import (
	"reflect"
	"strings"
	"testing"

	"thor/internal/synth"
	"thor/internal/vector"
)

// TestScaleVectorsIdentical pins the equivalence the scale figure
// quantifies: the streaming ingestion (Sampler + Accumulator) must emit
// bit-identical vectors to the eager one (Sample + batch TFIDF) for the
// same model, size, and seed.
func TestScaleVectorsIdentical(t *testing.T) {
	o := tinyOptions()
	corp := BuildCorpus(o)
	model := synth.BuildModel(corp.Collections[0].Pages)
	const size, seed = 200, int64(99)

	pages := model.Sample(size, seed)
	eager := vector.TFIDF(synth.TagSignatures(pages))

	acc := vector.NewAccumulator(false)
	s := model.Sampler(size, seed)
	for p, ok := s.Next(); ok; p, ok = s.Next() {
		acc.Add(p.Tags)
	}
	streamed := acc.Finish()

	if !reflect.DeepEqual(eager, streamed) {
		t.Fatal("streaming ingestion vectors differ from eager batch vectors")
	}
}

func TestScaleBenchmarkShape(t *testing.T) {
	o := tinyOptions()
	o.SynthCap = 110
	r := ScaleBenchmark(o)
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(r.Rows))
	}
	row := r.Rows[0]
	if row.PagesPerSite != 110 {
		t.Errorf("PagesPerSite = %d", row.PagesPerSite)
	}
	if row.StreamLiveBytes == 0 {
		t.Error("streaming path pinned no live heap (vectors must be resident)")
	}
	if row.EagerAllocBytes == 0 || row.StreamAllocBytes == 0 {
		t.Error("allocation counters empty")
	}
	if row.EagerSeconds < 0 || row.StreamSeconds < 0 {
		t.Error("negative seconds")
	}
	// The eager path necessarily allocates everything the streaming path
	// does plus the page slice and signature maps.
	if row.EagerAllocBytes <= row.StreamAllocBytes {
		t.Errorf("eager allocated %d bytes, streaming %d: eager must allocate strictly more",
			row.EagerAllocBytes, row.StreamAllocBytes)
	}
	out := r.String()
	for _, want := range []string{"pages/site", "eager-live-B", "stream-live-B", "ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
}

func TestScaleBenchmarkNoSites(t *testing.T) {
	o := tinyOptions()
	o.Sites = 0
	r := ScaleBenchmark(o)
	if len(r.Rows) != 0 {
		t.Fatalf("rows = %d, want 0", len(r.Rows))
	}
	if r.RatioAtLargest() != 0 { //thorlint:allow no-float-eq exact sentinel for the empty case
		t.Errorf("RatioAtLargest = %v, want 0", r.RatioAtLargest())
	}
	if !strings.Contains(r.String(), "nothing to measure") {
		t.Errorf("String() missing empty note:\n%s", r.String())
	}
}
