package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"thor/internal/deepweb"
	"thor/internal/fleet"
	"thor/internal/lifecycle"
	"thor/internal/parallel"
	"thor/internal/probe"
)

// DriftResult is the machine-readable outcome of DriftBenchmark: a
// served model's whole maintenance lifecycle under a template that
// shifts twice — mild drift folded in by a mini-batch refinement,
// severe drift answered by a full versioned rebuild — with every
// request served and the final revision proven adapted to the new
// template. The embedded table is the human-readable rendering.
type DriftResult struct {
	*TableResult

	// Requests is the total request count across the four phases;
	// Errors counts non-200 answers among them (contract: 0 — a
	// rebuild never drops or refuses an in-flight request).
	Requests int
	Errors   int
	// Refines and Rebuilds are the lifecycle's actions: exactly one
	// mini-batch refinement (the mild phase) and exactly one full
	// rebuild (the severe phase).
	Refines  int64
	Rebuilds int64
	// FinalRev is the served model's revision after all phases — 2:
	// rev 0 trained, rev 1 refined, rev 2 rebuilt.
	FinalRev int
	// Adapted reports that the post-rebuild phase closed its window
	// quietly: the rebuilt model judges the shifted template normal,
	// so no further rebuilds fire.
	Adapted bool
	// PhaseScores are the drift scores of each phase's closed window,
	// in phase order (stable, mild, severe, adapted).
	PhaseScores [4]float64
	// ResponseDigest hashes every phase's response bodies in request
	// order — identical across worker counts, because each phase's
	// requests are answered by one fixed revision and the rebuilds run
	// inside the phase barrier.
	ResponseDigest string
	// TrainSeconds is the initial model build; ServeSeconds is the
	// four serving phases' wall time at o.Workers clients.
	TrainSeconds float64
	ServeSeconds float64
}

// driftPage fabricates one page of a shifted site template. gen 2 is
// the mild shift — the trained layout's vocabulary inside a list-based
// skeleton, far enough from the training centroids to leave the
// baseline's distance buckets but recognizably the same site. gen 3 is
// the severe shift: a table-of-cards redesign with two alternating
// sub-layouts (so a rebuild's phase-one clustering has structure to
// find), sharing nothing with the original skeleton.
func driftPage(gen, i int) string {
	var b strings.Builder
	switch gen {
	case 2:
		b.WriteString(`<html><head><title>results v2</title></head><body><div id="nav">`)
		for j := 0; j < 8; j++ {
			b.WriteString(`<span class="m"><a href="#">item</a></span>`)
		}
		b.WriteString("</div>")
		for j := 0; j < 10+i%7; j++ {
			fmt.Fprintf(&b, "<ul><li><b>q%d</b><i>a%d</i></li><li><em>detail</em></li></ul>", j, i)
		}
	default:
		b.WriteString(`<html><head><title>results v3</title></head><body><header><h1>search</h1></header>`)
		if i%2 == 0 {
			for j := 0; j < 6+i%5; j++ {
				fmt.Fprintf(&b, `<table class="card"><tr><th>hit %d</th></tr><tr><td><a href="/d/%d">open</a></td><td><small>meta</small></td></tr></table>`, j, i)
			}
		} else {
			b.WriteString(`<section class="empty"><p>no results</p>`)
			for j := 0; j < 3+i%3; j++ {
				fmt.Fprintf(&b, `<p class="hint">try <code>term%d</code></p>`, j)
			}
			b.WriteString("</section>")
		}
	}
	b.WriteString("</body></html>")
	return b.String()
}

// DriftBenchmark measures the model-maintenance lifecycle end to end:
// one site's model is trained and registered in a drift-enabled fleet,
// then four equal phases of traffic replay a template's life — stable
// pages, a half-shifted mix that closes a mild window and triggers the
// mini-batch refinement, a full redesign that closes a severe window
// and triggers the versioned rebuild, and finally more redesigned
// pages served by the rebuilt model, which now judges them normal.
//
// Every phase is a parallel.Map barrier at o.Workers clients, and the
// rebuilds run on the request goroutine that closes the window — so
// the barrier provably contains them, and the phase-to-revision
// mapping (and with it every response body) is identical at any
// worker count. Timing is load-dependent; the lifecycle counters,
// scores, revisions, and the response digest are not.
func DriftBenchmark(o Options) *DriftResult {
	site := deepweb.NewSite(deepweb.SiteConfig{ID: 3, Seed: o.Seed})
	trainProber := &probe.Prober{Plan: probe.NewPlan(o.DictWords, o.Nonsense, o.Seed+1000), Labeler: deepweb.Labeler()}
	serveProber := &probe.Prober{Plan: probe.NewPlan(o.DictWords, o.Nonsense, o.Seed+2000), Labeler: deepweb.Labeler()}

	start := time.Now()
	m := buildServeModel(o, site.ID(), trainProber.ProbeSite(site).Pages)
	out := &DriftResult{TrainSeconds: time.Since(start).Seconds()}

	// One drift window per phase: the observer judges exactly the
	// phase's pages, and the reservoir can hold all of them.
	w := o.ProbesPerSite()
	fl := fleet.New(fleet.Config{Drift: &lifecycle.Config{Window: w, ReservoirCap: w}})
	defer fl.Close()
	const key = "drifting"
	fl.Register(key, m)
	h := fl.Handler()

	stable := make([]string, 0, w)
	for _, p := range serveProber.ProbeSite(site).Pages {
		stable = append(stable, p.HTML)
	}
	phases := make([][]string, 4)
	phases[0] = stable
	for i := 0; i < w; i++ {
		// The mild phase interleaves three stable pages with two shifted
		// ones: ~40% of the window's histogram leaves the baseline's
		// buckets, scoring ≈0.45 — comfortably drifted, comfortably
		// short of severe.
		if i%5 < 3 {
			phases[1] = append(phases[1], stable[i])
		} else {
			phases[1] = append(phases[1], driftPage(2, i))
		}
		phases[2] = append(phases[2], driftPage(3, i))
		phases[3] = append(phases[3], driftPage(3, w+i))
	}

	type answer struct {
		code int
		body string
	}
	var phaseStats [4]fleet.SiteStats
	digest := sha256.New()
	start = time.Now()
	for p, pages := range phases {
		answers := parallel.Map(len(pages), o.Workers, func(i int) answer {
			req := httptest.NewRequest(http.MethodPost, "/extract/"+key, strings.NewReader(pages[i]))
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			return answer{code: rec.Code, body: rec.Body.String()}
		})
		for _, a := range answers {
			out.Requests++
			if a.code != http.StatusOK {
				out.Errors++
			}
			//thorlint:allow no-unchecked-error hash.Hash writes never fail
			digest.Write([]byte(a.body))
		}
		// Each phase is exactly one detection window, closed by the
		// phase's last observation; LastScore survives the rebase a
		// rebuild performs, Score would already read 0 again.
		snap := fl.Stats().Sites[key]
		out.PhaseScores[p] = snap.Drift.LastScore
		phaseStats[p] = snap
	}
	out.ServeSeconds = time.Since(start).Seconds()
	out.ResponseDigest = hex.EncodeToString(digest.Sum(nil))

	ss := phaseStats[3]
	out.Refines, out.Rebuilds, out.FinalRev = ss.Refines, ss.Rebuilds, ss.Rev
	// Adapted: the rebuilt model closed the final phase's window below
	// the mild threshold, so the redesigned template now reads as
	// normal traffic and the lifecycle is quiescent again.
	out.Adapted = out.PhaseScores[3] < lifecycle.DefaultMild &&
		ss.Refines == 1 && ss.Rebuilds == 1

	res := &TableResult{
		Title: fmt.Sprintf("model lifecycle: drift detection and rebuild over %d requests (window %d)",
			out.Requests, w),
		Header: []string{"score", "refines", "rebuilds", "rev"},
	}
	for p, label := range []string{"stable", "mild shift", "severe shift", "adapted"} {
		res.Rows = append(res.Rows, Row{Label: label, Values: []float64{
			out.PhaseScores[p],
			float64(phaseStats[p].Refines), float64(phaseStats[p].Rebuilds), float64(phaseStats[p].Rev),
		}})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("trained in %.1fs; %d requests served in %.2fs with %d errors (contract: 0)",
			out.TrainSeconds, out.Requests, out.ServeSeconds, out.Errors),
		fmt.Sprintf("mild window scored %.2f → mini-batch refinement to rev 1; severe window scored %.2f → full rebuild to rev 2",
			out.PhaseScores[1], out.PhaseScores[2]),
		fmt.Sprintf("post-rebuild window scored %.2f: adapted=%v, no further rebuilds", out.PhaseScores[3], out.Adapted),
	)
	out.TableResult = res
	return out
}
