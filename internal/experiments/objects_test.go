package experiments

import "testing"

func TestObjectPartitioning(t *testing.T) {
	o := tinyOptions()
	res := ObjectPartitioning(o)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byLabel := make(map[string]Row)
	for _, r := range res.Rows {
		byLabel[r.Label] = r
	}
	multi := byLabel["multi-match"]
	if multi.Values[0] < 0.9 || multi.Values[1] < 0.9 {
		t.Errorf("multi-match object P/R = %v, want ≥ 0.9 on correct pagelets", multi.Values)
	}
	pooledRow := byLabel["pooled"]
	if pooledRow.Values[2] < 0.8 {
		t.Errorf("pooled object F1 = %v", pooledRow.Values[2])
	}
}
