package experiments

import (
	"strings"
	"testing"
)

func TestServeBenchmark(t *testing.T) {
	res := ServeBenchmark(tinyOptions())
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want build and the two apply paths", len(res.Rows))
	}
	build, apply, pooled := res.Rows[0], res.Rows[1], res.Rows[2]
	if build.Label != "build/site" || apply.Label != "apply/page" || pooled.Label != "pooled/page" {
		t.Fatalf("row labels %q, %q, %q", build.Label, apply.Label, pooled.Label)
	}
	for _, r := range res.Rows {
		for i, v := range r.Values {
			if v <= 0 {
				t.Errorf("%s column %d = %v, want positive", r.Label, i, v)
			}
		}
	}
	// The whole point of the staged engine: serving a page must be far
	// cheaper than building a site's model. Even on the tiny corpus the
	// real gap is ~1000×; 10× leaves wide slack for noisy CI machines.
	if buildMS, applyMS := build.Values[1], apply.Values[1]; buildMS < 10*applyMS {
		t.Errorf("build %vms/site vs apply %vms/page: per-page serving is not clearly cheaper", buildMS, applyMS)
	}
	// The pooled pipeline serves the same verdicts (contract-tested
	// bit-identical; the benchmark cross-checks page by page).
	if res.Mismatches != 0 {
		t.Errorf("pooled path disagreed with Apply on %d pages", res.Mismatches)
	}
	if res.Pages <= 0 || res.PooledApplySeconds <= 0 || res.LegacyApplySeconds <= 0 {
		t.Errorf("throughput fields not populated: pages=%d legacy=%v pooled=%v",
			res.Pages, res.LegacyApplySeconds, res.PooledApplySeconds)
	}
	var quality string
	for _, n := range res.Notes {
		if strings.Contains(n, "precision") {
			quality = n
		}
	}
	if quality == "" {
		t.Error("no serving-quality note on the table")
	}
}
