package experiments

import (
	"strings"
	"testing"
)

func TestServeBenchmark(t *testing.T) {
	res := ServeBenchmark(tinyOptions())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want build and apply", len(res.Rows))
	}
	build, apply := res.Rows[0], res.Rows[1]
	if build.Label != "build/site" || apply.Label != "apply/page" {
		t.Fatalf("row labels %q, %q", build.Label, apply.Label)
	}
	for _, r := range res.Rows {
		for i, v := range r.Values {
			if v <= 0 {
				t.Errorf("%s column %d = %v, want positive", r.Label, i, v)
			}
		}
	}
	// The whole point of the staged engine: serving a page must be far
	// cheaper than building a site's model. Even on the tiny corpus the
	// real gap is ~1000×; 10× leaves wide slack for noisy CI machines.
	if buildMS, applyMS := build.Values[1], apply.Values[1]; buildMS < 10*applyMS {
		t.Errorf("build %vms/site vs apply %vms/page: per-page serving is not clearly cheaper", buildMS, applyMS)
	}
	var quality string
	for _, n := range res.Notes {
		if strings.Contains(n, "precision") {
			quality = n
		}
	}
	if quality == "" {
		t.Error("no serving-quality note on the table")
	}
}
