package experiments

import "testing"

func TestMultiRegionAblation(t *testing.T) {
	o := tinyOptions()
	res := MultiRegionAblation(o)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	one, two := res.Rows[0], res.Rows[1]
	// One selection on two-region pages caps recall around one half.
	if one.Values[1] > 0.6 {
		t.Errorf("pagelets=1 recall = %v, expected capped near 0.5", one.Values[1])
	}
	// Two selections must beat one on recall by a wide margin.
	if two.Values[1] < one.Values[1]+0.2 {
		t.Errorf("pagelets=2 recall %v barely above pagelets=1 %v",
			two.Values[1], one.Values[1])
	}
	// And the third selection must not raise recall further.
	three := res.Rows[2]
	if three.Values[1] > two.Values[1]+0.05 {
		t.Errorf("pagelets=3 recall %v above pagelets=2 %v", three.Values[1], two.Values[1])
	}
}

func TestBisectingAblation(t *testing.T) {
	o := tinyOptions()
	res := BisectingAblation(o)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		entropy, purity := r.Values[0], r.Values[1]
		if entropy > 0.2 {
			t.Errorf("%s entropy = %v, both clusterers should do well here", r.Label, entropy)
		}
		if purity < 0.85 {
			t.Errorf("%s purity = %v", r.Label, purity)
		}
	}
}

func TestAdaptiveProbingAblation(t *testing.T) {
	o := tinyOptions()
	res := AdaptiveProbingAblation(o)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	fixed, adaptive := res.Rows[0], res.Rows[1]
	if adaptive.Values[0] <= fixed.Values[0] {
		t.Errorf("adaptive collected %v pages/site, fixed %v — feedback round missing",
			adaptive.Values[0], fixed.Values[0])
	}
	// Mined probes hit the database far more often than dictionary draws.
	if adaptive.Values[2] <= fixed.Values[2] {
		t.Errorf("feedback hit-rate %v not above fixed %v",
			adaptive.Values[2], fixed.Values[2])
	}
}
