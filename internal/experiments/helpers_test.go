package experiments

import (
	"math/rand"
	"testing"

	"thor/internal/corpus"
)

func TestSamplePages(t *testing.T) {
	col := &corpus.Collection{}
	for i := 0; i < 20; i++ {
		col.Pages = append(col.Pages, &corpus.Page{Query: string(rune('a' + i))})
	}
	rng := rand.New(rand.NewSource(1))

	got := samplePages(col, 5, rng)
	if len(got) != 5 {
		t.Fatalf("sampled %d", len(got))
	}
	seen := make(map[*corpus.Page]bool)
	for _, p := range got {
		if seen[p] {
			t.Fatal("duplicate page sampled")
		}
		seen[p] = true
	}
	// Requesting more than available returns the whole collection.
	if got := samplePages(col, 100, rng); len(got) != 20 {
		t.Errorf("oversample = %d", len(got))
	}
}

func TestSynthSiteBudget(t *testing.T) {
	o := Options{Sites: 50}
	if got := synthSiteBudget(110, o); got != 50 {
		t.Errorf("budget(110) = %d", got)
	}
	if got := synthSiteBudget(11000, o); got != 10 {
		t.Errorf("budget(11000) = %d", got)
	}
	if got := synthSiteBudget(110000, o); got != 3 {
		t.Errorf("budget(110000) = %d", got)
	}
	o.Full = true
	if got := synthSiteBudget(110000, o); got != 50 {
		t.Errorf("full budget = %d", got)
	}
}

func TestSynthSizes(t *testing.T) {
	o := Options{}
	if got := SynthSizes(o); len(got) != 3 || got[2] != 11000 {
		t.Errorf("default sizes = %v", got)
	}
	o.Full = true
	if got := SynthSizes(o); len(got) != 4 || got[3] != 110000 {
		t.Errorf("full sizes = %v", got)
	}
	o.Full = false
	o.SynthCap = 1100
	if got := SynthSizes(o); len(got) != 2 {
		t.Errorf("capped sizes = %v", got)
	}
}

func TestOptionsProbesPerSite(t *testing.T) {
	o := Options{DictWords: 100, Nonsense: 10}
	if o.ProbesPerSite() != 110 {
		t.Errorf("ProbesPerSite = %d", o.ProbesPerSite())
	}
}

func TestHistogramAddClamps(t *testing.T) {
	h := &Histogram{BinWidth: 0.1, Counts: make([]int, 10)}
	h.Add(-0.5) // clamps to first bin
	h.Add(1.5)  // clamps to last bin
	h.Add(0.55)
	if h.Counts[0] != 1 || h.Counts[9] != 1 || h.Counts[5] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total != 3 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Fraction(0) != 1.0/3 {
		t.Errorf("fraction = %v", h.Fraction(0))
	}
	empty := &Histogram{BinWidth: 0.1, Counts: make([]int, 10)}
	if empty.Fraction(0) != 0 {
		t.Error("empty histogram fraction")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.Sites != 50 || o.DictWords != 100 || o.Nonsense != 10 || o.Reps != 10 {
		t.Errorf("defaults = %+v", o)
	}
}
