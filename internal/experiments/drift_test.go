package experiments

import "testing"

// driftOptions is a CI-sized lifecycle run: window 28, four phases,
// 112 requests.
func driftOptions(workers int) Options {
	return Options{DictWords: 24, Nonsense: 4, Seed: 42, K: 4, KMRestarts: 2, Workers: workers}
}

// TestDriftBenchmarkContract pins the lifecycle story the benchmark
// exists to tell: the stable phase stays quiet, the mild phase
// triggers exactly one mini-batch refinement, the severe phase exactly
// one full rebuild, and the rebuilt model judges the redesigned
// template normal — with every request answered.
func TestDriftBenchmarkContract(t *testing.T) {
	r := DriftBenchmark(driftOptions(1))
	if r.Errors != 0 {
		t.Errorf("errors = %d, want 0 (a rebuild must not drop requests)", r.Errors)
	}
	if r.Refines != 1 || r.Rebuilds != 1 {
		t.Errorf("refines/rebuilds = %d/%d, want 1/1", r.Refines, r.Rebuilds)
	}
	if r.FinalRev != 2 {
		t.Errorf("final rev = %d, want 2 (trained, refined, rebuilt)", r.FinalRev)
	}
	if !r.Adapted {
		t.Errorf("adapted = false; post-rebuild phase scored %.3f", r.PhaseScores[3])
	}
	// The four scores must tell the arc: quiet, mild, severe, quiet.
	if s := r.PhaseScores[0]; s >= 0.25 {
		t.Errorf("stable phase scored %.3f, want < 0.25", s)
	}
	if s := r.PhaseScores[1]; s < 0.25 || s >= 0.60 {
		t.Errorf("mild phase scored %.3f, want in [0.25, 0.60)", s)
	}
	if s := r.PhaseScores[2]; s < 0.60 {
		t.Errorf("severe phase scored %.3f, want ≥ 0.60", s)
	}
	if s := r.PhaseScores[3]; s >= 0.25 {
		t.Errorf("adapted phase scored %.3f, want < 0.25", s)
	}
}

// TestDriftBenchmarkWorkerCountIndependence re-runs the benchmark at
// several worker counts and demands identical lifecycle outcomes and a
// bit-identical response stream: the rebuilds run inside each phase's
// barrier on a request goroutine, so concurrency moves no observable
// behavior.
func TestDriftBenchmarkWorkerCountIndependence(t *testing.T) {
	ref := DriftBenchmark(driftOptions(1))
	for _, workers := range []int{2, 4} {
		r := DriftBenchmark(driftOptions(workers))
		if r.ResponseDigest != ref.ResponseDigest {
			t.Errorf("workers=%d: response digest %s != serial %s", workers, r.ResponseDigest, ref.ResponseDigest)
		}
		if r.PhaseScores != ref.PhaseScores {
			t.Errorf("workers=%d: phase scores %v != serial %v", workers, r.PhaseScores, ref.PhaseScores)
		}
		if r.Refines != ref.Refines || r.Rebuilds != ref.Rebuilds || r.FinalRev != ref.FinalRev {
			t.Errorf("workers=%d: lifecycle %d/%d/rev%d != serial %d/%d/rev%d", workers,
				r.Refines, r.Rebuilds, r.FinalRev, ref.Refines, ref.Rebuilds, ref.FinalRev)
		}
	}
}
