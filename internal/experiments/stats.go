package experiments

import (
	"fmt"
	"time"

	"thor/internal/corpus"
	"thor/internal/htmlx"
)

// CorpusStats reports the corpus statistics quoted in Section 4: the
// per-page averages of distinct tags (paper: 22.3) and distinct content
// terms (paper: 184.0) that explain the order-of-magnitude speed gap
// between tag-based and content-based clustering, plus page counts, class
// distribution, sizes, and parse timing.
type CorpusStats struct {
	Sites             int
	Pages             int
	ClassCounts       [corpus.NumClasses]int
	AvgDistinctTags   float64
	AvgDistinctTerms  float64
	AvgPageBytes      float64
	AvgParseTime      time.Duration
	TruthPageletPages int
}

// String renders the statistics.
func (s *CorpusStats) String() string {
	out := "Corpus statistics\n"
	out += fmt.Sprintf("  sites: %d, pages: %d\n", s.Sites, s.Pages)
	for c := corpus.Class(0); c < corpus.NumClasses; c++ {
		out += fmt.Sprintf("  %-14s %5d (%.1f%%)\n", c.String()+":",
			s.ClassCounts[c], 100*float64(s.ClassCounts[c])/float64(s.Pages))
	}
	out += fmt.Sprintf("  avg distinct tags/page:  %.1f (paper: 22.3)\n", s.AvgDistinctTags)
	out += fmt.Sprintf("  avg distinct terms/page: %.1f (paper: 184.0)\n", s.AvgDistinctTerms)
	out += fmt.Sprintf("  avg page size:           %.0f bytes\n", s.AvgPageBytes)
	out += fmt.Sprintf("  avg parse time:          %v\n", s.AvgParseTime)
	out += fmt.Sprintf("  pages bearing pagelets:  %d\n", s.TruthPageletPages)
	return out
}

// Stats computes the corpus statistics over a freshly probed corpus.
func Stats(o Options) *CorpusStats {
	corp := BuildCorpus(o)
	s := &CorpusStats{Sites: len(corp.Collections), Pages: corp.TotalPages()}
	s.ClassCounts = corp.ClassDistribution()
	var tagSum, termSum, byteSum float64
	var parseTotal time.Duration
	for _, col := range corp.Collections {
		for _, p := range col.Pages {
			start := time.Now()
			tree := htmlx.Parse(p.HTML)
			parseTotal += time.Since(start)
			tagSum += float64(tree.DistinctTags())
			termSum += float64(tree.DistinctTerms())
			byteSum += float64(p.Size())
			if p.Class.HasPagelets() {
				s.TruthPageletPages++
			}
		}
	}
	n := float64(s.Pages)
	s.AvgDistinctTags = tagSum / n
	s.AvgDistinctTerms = termSum / n
	s.AvgPageBytes = byteSum / n
	s.AvgParseTime = parseTotal / time.Duration(s.Pages)
	return s
}
