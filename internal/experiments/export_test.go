package experiments

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestFigureWriteCSV(t *testing.T) {
	f := &Figure{
		XLabel: "pages",
		Series: []Series{
			{Name: "TTag", X: []float64{5, 10}, Y: []float64{0.01, 0.02}},
			{Name: "Rand", X: []float64{5, 10}, Y: []float64{0.5, 0.6}},
		},
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "pages" || rows[0][1] != "TTag" || rows[0][2] != "Rand" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != "5" || rows[1][1] != "0.01" || rows[1][2] != "0.5" {
		t.Errorf("row = %v", rows[1])
	}
}

func TestFigureWriteCSVRaggedSeries(t *testing.T) {
	f := &Figure{
		XLabel: "x",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{3, 4}},
			{Name: "b", X: []float64{1}, Y: []float64{9}},
		},
	}
	var b strings.Builder
	if err := f.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, _ := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if rows[2][2] != "" {
		t.Errorf("missing point should be empty, got %q", rows[2][2])
	}
}

func TestTableWriteCSV(t *testing.T) {
	tr := &TableResult{
		Header: []string{"precision", "recall"},
		Rows: []Row{
			{Label: "TTag", Values: []float64{0.97, 0.96}},
		},
	}
	var b strings.Builder
	if err := tr.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, _ := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if rows[0][0] != "label" || rows[1][0] != "TTag" || rows[1][1] != "0.97" {
		t.Errorf("csv = %v", rows)
	}
}

func TestFig9WriteCSV(t *testing.T) {
	r := &Fig9Result{
		WithoutTFIDF: &Histogram{BinWidth: 0.5, Counts: []int{3, 1}, Total: 4},
		WithTFIDF:    &Histogram{BinWidth: 0.5, Counts: []int{1, 3}, Total: 4},
	}
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	rows, _ := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1][2] != "0.75" || rows[1][3] != "0.25" {
		t.Errorf("fractions = %v", rows[1])
	}
}
