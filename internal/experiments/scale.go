package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"thor/internal/synth"
	"thor/internal/vector"
)

// ScaleRow compares the eager and streaming ingestion paths at one
// synthetic scale: how many bytes of heap each path keeps live while its
// artifacts exist, how many bytes it allocates in total, and how long the
// ingestion (sampling + vector building) takes.
type ScaleRow struct {
	PagesPerSite int
	// EagerLiveBytes is the live heap retained by the eager path's
	// artifacts — the materialized page slice, the signature maps, and the
	// weighted vectors — measured by runtime.ReadMemStats after a GC while
	// everything is still referenced. StreamLiveBytes is the same
	// measurement for the streaming path, which retains only the finished
	// vectors.
	EagerLiveBytes  uint64
	StreamLiveBytes uint64
	// Total bytes allocated by each path (includes transients the GC
	// reclaims).
	EagerAllocBytes  uint64
	StreamAllocBytes uint64
	EagerSeconds     float64
	StreamSeconds    float64
}

// LiveRatio returns how many times more heap the eager path keeps live
// than the streaming path (0 when the streaming measurement is empty).
func (r ScaleRow) LiveRatio() float64 {
	if r.StreamLiveBytes == 0 {
		return 0
	}
	return float64(r.EagerLiveBytes) / float64(r.StreamLiveBytes)
}

// ScaleResult is the bounded-memory scaling figure: one row per synthetic
// sweep size, eager vs streaming.
type ScaleResult struct {
	Approach string
	Rows     []ScaleRow
	Notes    []string
}

// RatioAtLargest returns the eager/streaming live-heap ratio at the
// largest measured size (0 when nothing was measured).
func (r *ScaleResult) RatioAtLargest() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	return r.Rows[len(r.Rows)-1].LiveRatio()
}

// String renders the scaling comparison as an aligned table.
func (r *ScaleResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scale: eager vs streaming ingestion residency (%s)\n", r.Approach)
	fmt.Fprintf(&b, "%-12s  %14s  %14s  %10s  %10s  %8s  %10s  %10s\n",
		"pages/site", "eager-live-B", "stream-live-B", "eager-B/pg", "strm-B/pg", "ratio", "eager-s", "stream-s")
	for _, row := range r.Rows {
		n := float64(row.PagesPerSite)
		fmt.Fprintf(&b, "%-12d  %14d  %14d  %10.0f  %10.0f  %8.1f  %10.4f  %10.4f\n",
			row.PagesPerSite, row.EagerLiveBytes, row.StreamLiveBytes,
			float64(row.EagerLiveBytes)/n, float64(row.StreamLiveBytes)/n,
			row.LiveRatio(), row.EagerSeconds, row.StreamSeconds)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// measureIngest runs one ingestion function and reports the live heap its
// artifacts pin (HeapAlloc delta across the call, both ends measured
// after a forced GC so only reachable memory counts), the total bytes it
// allocated, and its wall time. The artifact is kept alive through the
// final measurement.
func measureIngest(f func() any) (liveBytes, allocBytes uint64, seconds float64) {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	artifact := f()
	seconds = time.Since(start).Seconds()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		liveBytes = after.HeapAlloc - before.HeapAlloc
	}
	allocBytes = after.TotalAlloc - before.TotalAlloc
	runtime.KeepAlive(artifact)
	return liveBytes, allocBytes, seconds
}

// eagerArtifacts pins everything the pre-streaming Figure 6/7 inner loop
// held at once: the page slice, the extracted signature docs, and the
// weighted vectors.
type eagerArtifacts struct {
	pages []synth.Page
	docs  []map[string]int
	vecs  []vector.Sparse
}

// ScaleBenchmark measures the tentpole's memory claim: it ingests one
// site's synthetic collection at each sweep size through both paths —
// eager (Sample the whole collection, then batch TFIDF over the extracted
// signatures, everything resident at once) and streaming (Sampler +
// vector.Accumulator, each page released after its counts are folded in)
// — and records live heap, total allocation, and seconds per path. The
// two paths produce bit-identical vectors (pinned by the scale test); the
// figure quantifies what that equivalence costs: streaming residency is
// the sparse vectors alone, so the eager/streaming live-heap ratio grows
// with the per-page signature weight and stays well above 1 at every
// scale.
//
// TFIDF over tag signatures (the paper's TTag) is measured, as the
// representative approach of the sweep.
func ScaleBenchmark(o Options) *ScaleResult {
	res := &ScaleResult{Approach: "TTag"}
	corp := BuildCorpus(o)
	if len(corp.Collections) == 0 {
		res.Notes = append(res.Notes, "no sites probed; nothing to measure")
		return res
	}
	model := synth.BuildModel(corp.Collections[0].Pages)
	for _, size := range SynthSizes(o) {
		seed := o.Seed + int64(size)
		row := ScaleRow{PagesPerSite: size}
		row.EagerLiveBytes, row.EagerAllocBytes, row.EagerSeconds = measureIngest(func() any {
			pages := model.Sample(size, seed)
			docs := synth.TagSignatures(pages)
			return &eagerArtifacts{pages: pages, docs: docs, vecs: vector.TFIDF(docs)}
		})
		row.StreamLiveBytes, row.StreamAllocBytes, row.StreamSeconds = measureIngest(func() any {
			acc := vector.NewAccumulator(false)
			s := model.Sampler(size, seed)
			for p, ok := s.Next(); ok; p, ok = s.Next() {
				acc.Add(p.Tags)
			}
			return acc.Finish()
		})
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"live bytes = HeapAlloc delta after GC with artifacts pinned; eager pins pages+signatures+vectors, streaming pins vectors only",
		fmt.Sprintf("eager/streaming live-heap ratio at largest size: %.1fx", res.RatioAtLargest()))
	return res
}
