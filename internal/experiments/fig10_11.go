package experiments

import (
	"fmt"

	"thor/internal/core"
	"thor/internal/corpus"
	"thor/internal/quality"
)

// Fig10 reproduces Figure 10: overall two-phase precision and recall when
// phase one uses each of the clustering approaches (TTag, RTag, TCon,
// RCon, Size, URLs, Rand) with the combined subtree distance metric.
func Fig10(o Options) *TableResult {
	corp := BuildCorpus(o)
	res := &TableResult{
		Title:  "Figure 10: overall two-phase precision/recall by clustering approach",
		Header: []string{"precision", "recall", "f1"},
	}
	// Paper's figure orders best-first.
	order := []core.Approach{
		core.TFIDFTags, core.RawTags, core.TFIDFContent, core.RawContent,
		core.SizeBased, core.URLBased, core.RandomAssign,
	}
	for _, a := range order {
		tallies := perSite(corp, o, func(col *corpus.Collection) siteTally {
			cfg := core.DefaultConfig()
			cfg.Approach = a
			cfg.K = o.K
			cfg.Restarts = o.KMRestarts
			cfg.Seed = o.Seed + int64(col.SiteID)
			cfg.Workers = 1
			r := core.NewExtractor(cfg).Extract(col.Pages)
			c, i, t := core.Score(r.Pagelets, col.Pages)
			return siteTally{c: c, i: i, t: t}
		})
		var counter quality.Counter
		for _, s := range tallies {
			counter.Add(s.c, s.i, s.t)
		}
		pr := counter.PR()
		res.Rows = append(res.Rows, Row{
			Label:  a.String(),
			Values: []float64{pr.Precision, pr.Recall, pr.F1()},
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("full pipeline, k=%d, top %d clusters passed", o.K, core.DefaultConfig().TopClusters))
	return res
}

// Fig11 reproduces Figure 11: the precision/recall trade-off as the number
// of clusters passed from phase one to phase two grows. As in the paper,
// the clustering phase generates three clusters and 1, 2, then all 3 are
// passed: with one cluster precision is high but recall suffers (pagelets
// in unpassed clusters are overlooked); with all three recall is maximal
// but precision falls (pages without pagelets flood phase two).
func Fig11(o Options) *TableResult {
	corp := BuildCorpus(o)
	res := &TableResult{
		Title:  "Figure 11: precision/recall vs clusters passed to phase 2 (k=3, TTag)",
		Header: []string{"precision", "recall", "f1"},
	}
	for pass := 1; pass <= 3; pass++ {
		tallies := perSite(corp, o, func(col *corpus.Collection) siteTally {
			cfg := core.DefaultConfig()
			cfg.K = 3
			cfg.TopClusters = pass
			cfg.Restarts = o.KMRestarts
			cfg.Seed = o.Seed + int64(col.SiteID)
			cfg.Workers = 1
			r := core.NewExtractor(cfg).Extract(col.Pages)
			c, i, t := core.Score(r.Pagelets, col.Pages)
			return siteTally{c: c, i: i, t: t}
		})
		var counter quality.Counter
		for _, s := range tallies {
			counter.Add(s.c, s.i, s.t)
		}
		pr := counter.PR()
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("%d cluster(s)", pass),
			Values: []float64{pr.Precision, pr.Recall, pr.F1()},
		})
	}
	return res
}
