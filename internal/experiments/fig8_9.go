package experiments

import (
	"fmt"

	"thor/internal/core"
	"thor/internal/corpus"
	"thor/internal/quality"
)

// DistanceVariants are the subtree-distance ablations of Figure 8: each of
// the four shape features alone, then the combined metric.
var DistanceVariants = []struct {
	Label   string
	Weights core.ShapeWeights
}{
	{"F", core.WeightsFanoutOnly},
	{"N", core.WeightsNodesOnly},
	{"D", core.WeightsDepthOnly},
	{"P", core.WeightsPathOnly},
	{"All", core.WeightsAll},
}

// Fig8 reproduces Figure 8: precision and recall of the QA-Pagelet
// identification phase in isolation, under each subtree distance variant.
// Phase two runs on perfectly pre-labeled page clusters (the pages
// pre-labeled as containing QA-Pagelets, grouped by class), exactly the
// isolation setup of Section 4.2.
func Fig8(o Options) *TableResult {
	corp := BuildCorpus(o)
	res := &TableResult{
		Title:  "Figure 8: phase-2 precision/recall by subtree distance metric",
		Header: []string{"precision", "recall", "f1"},
	}
	for _, v := range DistanceVariants {
		counter := phase2OnLabeledClusters(corp, v.Weights, o)
		pr := counter.PR()
		res.Rows = append(res.Rows, Row{
			Label:  v.Label,
			Values: []float64{pr.Precision, pr.Recall, pr.F1()},
		})
	}
	res.Notes = append(res.Notes,
		"input: pre-labeled pagelet-bearing pages per site, one cluster per class")
	return res
}

// phase2OnLabeledClusters runs phase two on every hand-labeled
// pagelet-bearing class cluster of every site and pools the tallies.
func phase2OnLabeledClusters(corp *corpus.Corpus, w core.ShapeWeights, o Options) quality.Counter {
	cfg := core.DefaultConfig()
	cfg.ShapeWeights = w
	cfg.Seed = o.Seed
	cfg.Workers = 1
	tallies := perSite(corp, o, func(col *corpus.Collection) siteTally {
		var s siteTally
		for _, class := range []corpus.Class{corpus.MultiMatch, corpus.SingleMatch} {
			pages := col.ByClass(class)
			if len(pages) < 2 {
				continue
			}
			ext := core.NewExtractor(cfg)
			p2 := ext.ExtractCluster(pages)
			c, i, t := core.Score(p2.Pagelets, pages)
			s.c += c
			s.i += i
			s.t += t
		}
		return s
	})
	var counter quality.Counter
	for _, s := range tallies {
		counter.Add(s.c, s.i, s.t)
	}
	return counter
}

// Histogram is a binned distribution over [0,1].
type Histogram struct {
	Title string
	// BinWidth is the width of each bin (0.1 in the paper's Figure 9).
	BinWidth float64
	// Counts[i] is the number of observations in [i·w, (i+1)·w).
	Counts []int
	Total  int
}

// Fraction returns the share of observations in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// Add records an observation (clamped to [0,1]).
func (h *Histogram) Add(v float64) {
	if v < 0 {
		v = 0
	}
	if v >= 1 {
		v = 1 - 1e-9
	}
	h.Counts[int(v/h.BinWidth)]++
	h.Total++
}

// String renders the histogram with text bars.
func (h *Histogram) String() string {
	out := h.Title + "\n"
	for i, c := range h.Counts {
		frac := h.Fraction(i)
		bar := ""
		for j := 0; j < int(frac*60); j++ {
			bar += "#"
		}
		out += fmt.Sprintf("  [%.1f,%.1f)  %5d (%5.1f%%) %s\n",
			float64(i)*h.BinWidth, float64(i+1)*h.BinWidth, c, 100*frac, bar)
	}
	return out
}

// Fig9Result pairs the two histograms of Figure 9.
type Fig9Result struct {
	WithoutTFIDF *Histogram
	WithTFIDF    *Histogram
}

// String renders both histograms side by side, as in the paper's figure.
func (r *Fig9Result) String() string {
	return r.WithoutTFIDF.String() + "\n" + r.WithTFIDF.String()
}

// Bimodality returns, for each histogram, the fraction of subtree sets in
// the extreme bins (below 0.2 or at/above 0.8) — the quantitative form of
// the paper's observation that TFIDF separates subtree sets into clearly
// static and clearly dynamic groups.
func (r *Fig9Result) Bimodality() (without, with float64) {
	f := func(h *Histogram) float64 {
		if h.Total == 0 {
			return 0
		}
		ext := 0
		for i, c := range h.Counts {
			lo := float64(i) * h.BinWidth
			if lo < 0.2 || lo >= 0.8 {
				ext += c
			}
		}
		return float64(ext) / float64(h.Total)
	}
	return f(r.WithoutTFIDF), f(r.WithTFIDF)
}

// Fig9 reproduces Figure 9: the distribution of intra-subtree-set
// similarity over all common subtree sets, computed with raw term counts
// (left) versus TFIDF weighting (right). With TFIDF the distribution is
// bimodal — query-independent static sets near 1, query-dependent dynamic
// sets near 0 — which is what makes the 0.5 threshold uncritical.
func Fig9(o Options) *Fig9Result {
	corp := BuildCorpus(o)
	res := &Fig9Result{
		WithoutTFIDF: &Histogram{
			Title:    "Figure 9 (left): intra-subtree-set similarity, raw counts",
			BinWidth: 0.1, Counts: make([]int, 10),
		},
		WithTFIDF: &Histogram{
			Title:    "Figure 9 (right): intra-subtree-set similarity, TFIDF",
			BinWidth: 0.1, Counts: make([]int, 10),
		},
	}
	for _, raw := range []bool{true, false} {
		cfg := core.DefaultConfig()
		cfg.Seed = o.Seed
		cfg.RawContentVectors = raw
		cfg.Workers = 1
		hist := res.WithTFIDF
		if raw {
			hist = res.WithoutTFIDF
		}
		// Collect each site's similarities as a slice and fold them into the
		// histogram in site order, keeping bin counts worker-independent.
		perSiteSims := perSite(corp, o, func(col *corpus.Collection) []float64 {
			var sims []float64
			for _, class := range []corpus.Class{corpus.MultiMatch, corpus.SingleMatch} {
				pages := col.ByClass(class)
				if len(pages) < 2 {
					continue
				}
				ext := core.NewExtractor(cfg)
				p2 := ext.ExtractCluster(pages)
				for _, set := range p2.Sets {
					sims = append(sims, set.IntraSim)
				}
			}
			return sims
		})
		for _, sims := range perSiteSims {
			for _, v := range sims {
				hist.Add(v)
			}
		}
	}
	return res
}
