package experiments

import (
	"fmt"
	"time"

	"thor/internal/core"
	"thor/internal/treedist"
	"thor/internal/vector"
)

// TreeEditResult reports the cost comparison of Section 4.1's text: for a
// single collection, the time to compute all pairwise tag-tree-signature
// similarities versus all pairwise tree edit distances. The paper found
// 1–5 hours for tree-edit clustering of one 110-page collection versus
// under 0.1 s for the TFIDF tag approach; the point reproduced here is the
// orders-of-magnitude gap, not the absolute times of a 2003 JVM.
type TreeEditResult struct {
	Pages          int
	PairCount      int
	TagSigTotal    time.Duration
	TreeEditTotal  time.Duration
	SpeedupFactor  float64
	TreeEditSample int // pairs actually measured (extrapolated when capped)
}

// String renders the comparison.
func (r *TreeEditResult) String() string {
	return fmt.Sprintf(
		"Tree-edit vs tag-signature cost (one collection of %d pages, %d pairs)\n"+
			"  tag-signature pairwise similarity: %v\n"+
			"  tree-edit pairwise distance:       %v (measured %d pairs, extrapolated)\n"+
			"  tree-edit / tag-signature factor:  %.0fx\n",
		r.Pages, r.PairCount, r.TagSigTotal, r.TreeEditTotal,
		r.TreeEditSample, r.SpeedupFactor)
}

// TreeEditComparison measures both metrics on the first collection of the
// corpus. Tree edit distance is quadratic per pair in page nodes, so only
// samplePairs pairs are timed and the total is extrapolated — exactly the
// judgment that led the paper to exclude tree-edit clustering from the
// other experiments.
func TreeEditComparison(o Options, samplePairs int) *TreeEditResult {
	corp := BuildCorpus(o)
	col := corp.Collections[0]
	pages := col.Pages
	n := len(pages)
	pairs := n * (n - 1) / 2

	// Tag-signature cost: interned vector build + all pairwise cosines on
	// the integer kernels — the production clustering path.
	start := time.Now()
	iv := vector.TFIDFInterned(core.TagSignatures(pages))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			iv.Vecs[i].Cosine(iv.Vecs[j])
		}
	}
	tagTotal := time.Since(start)

	// Tree-edit cost on a sample of pairs.
	if samplePairs <= 0 {
		samplePairs = 50
	}
	if samplePairs > pairs {
		samplePairs = pairs
	}
	measured := 0
	start = time.Now()
outer:
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			treedist.Distance(pages[i].Tree(), pages[j].Tree())
			measured++
			if measured >= samplePairs {
				break outer
			}
		}
	}
	sampleTotal := time.Since(start)
	treeTotal := time.Duration(float64(sampleTotal) * float64(pairs) / float64(measured))

	factor := float64(treeTotal) / float64(tagTotal)
	return &TreeEditResult{
		Pages:          n,
		PairCount:      pairs,
		TagSigTotal:    tagTotal,
		TreeEditTotal:  treeTotal,
		SpeedupFactor:  factor,
		TreeEditSample: measured,
	}
}
