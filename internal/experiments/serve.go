package experiments

import (
	"fmt"
	"time"

	"thor/internal/core"
	"thor/internal/deepweb"
	"thor/internal/probe"
	"thor/internal/quality"
)

// ServeBenchmark measures the staged engine's train-once/serve-many
// split: for each site, the one-time cost of BuildModel over the probed
// sample versus the per-page cost of Model.Apply on a second, fresh probe
// round the model never saw. The gap between the two is the case for
// persisting models — a deep-web search engine pays the left column once
// per site and the right column on every page it serves. Timing is
// serial (one site, one page at a time), like the paper's timing figures;
// the fresh pages are also scored against ground truth so the table shows
// what serving quality the latency buys.
func ServeBenchmark(o Options) *TableResult {
	sites := deepweb.NewSites(o.Sites, o.Seed)
	trainProber := &probe.Prober{Plan: probe.NewPlan(o.DictWords, o.Nonsense, o.Seed+1000), Labeler: deepweb.Labeler()}
	// A different plan seed draws different dictionary probes: the served
	// pages answer queries the training sample never issued.
	serveProber := &probe.Prober{Plan: probe.NewPlan(o.DictWords, o.Nonsense, o.Seed+2000), Labeler: deepweb.Labeler()}

	var buildSecs, applySecs float64
	var servedPages int
	var counter quality.Counter
	for _, s := range sites {
		train := trainProber.ProbeSite(s)
		cfg := core.DefaultConfig()
		cfg.K = o.K
		cfg.Restarts = o.KMRestarts
		cfg.Seed = o.Seed + int64(s.ID())
		cfg.Workers = 1
		ext := core.NewExtractor(cfg)

		start := time.Now()
		m, err := ext.BuildModel(train.Pages)
		buildSecs += time.Since(start).Seconds()
		if err != nil {
			//thorlint:allow no-panic-in-lib programmer-error guard; the default config names a registered clusterer
			panic("experiments: " + err.Error())
		}

		fresh := serveProber.ProbeSite(s)
		var pagelets []*core.Pagelet
		start = time.Now()
		for _, p := range fresh.Pages {
			pls, err := m.Apply(p)
			if err != nil {
				//thorlint:allow no-panic-in-lib programmer-error guard; Apply errors only on nil pages or empty models
				panic("experiments: " + err.Error())
			}
			pagelets = append(pagelets, pls...)
		}
		applySecs += time.Since(start).Seconds()
		servedPages += len(fresh.Pages)
		c, i, t := core.Score(pagelets, fresh.Pages)
		counter.Add(c, i, t)
	}

	res := &TableResult{
		Title:  "staged serving: one-time model build vs per-page Apply (fresh probe round)",
		Header: []string{"seconds", "unit-ms", "unit/sec"},
	}
	res.Rows = append(res.Rows, Row{
		Label: "build/site",
		Values: []float64{
			buildSecs,
			1000 * buildSecs / float64(len(sites)),
			float64(len(sites)) / buildSecs,
		},
	})
	res.Rows = append(res.Rows, Row{
		Label: "apply/page",
		Values: []float64{
			applySecs,
			1000 * applySecs / float64(servedPages),
			float64(servedPages) / applySecs,
		},
	})
	pr := counter.PR()
	res.Notes = append(res.Notes,
		"unit = site for the build row, page for the apply row; seconds are serial totals",
		fmt.Sprintf("served %d fresh pages: precision %.3f, recall %.3f", servedPages, pr.Precision, pr.Recall),
	)
	return res
}
