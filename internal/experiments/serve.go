package experiments

import (
	"context"
	"fmt"
	"time"

	"thor/internal/core"
	"thor/internal/corpus"
	"thor/internal/deepweb"
	"thor/internal/probe"
	"thor/internal/quality"
)

// serveModelConfig is the canonical per-site serving-model configuration
// shared by the serving benchmarks: the experiment's K/restarts/seed with
// a serial inner pipeline, so site-level fan-out never nests parallelism.
func serveModelConfig(o Options, siteID int) core.Config {
	cfg := core.DefaultConfig()
	cfg.K = o.K
	cfg.Restarts = o.KMRestarts
	cfg.Seed = o.Seed + int64(siteID)
	cfg.Workers = 1
	return cfg
}

// buildServeModel trains one site's serving model from its probed pages.
func buildServeModel(o Options, siteID int, pages []*corpus.Page) *core.Model {
	m, err := core.NewExtractor(serveModelConfig(o, siteID)).BuildModel(pages)
	if err != nil {
		//thorlint:allow no-panic-in-lib programmer-error guard; the default config names a registered clusterer
		panic("experiments: " + err.Error())
	}
	return m
}

// ServeResult is the machine-readable outcome of ServeBenchmark: the
// one-time model-build cost against both per-page apply paths — the
// legacy Apply over cached corpus pages and the pooled ApplyHTML that
// serves raw request bytes — plus the serving quality the latency buys.
// The embedded table is the human-readable rendering.
type ServeResult struct {
	*TableResult

	// Pages is the number of fresh pages served per path.
	Pages int
	// BuildSeconds is the serial model-build total across sites.
	BuildSeconds float64
	// LegacyApplySeconds and PooledApplySeconds are the serial per-page
	// apply totals of the two paths over the same fresh pages.
	LegacyApplySeconds float64
	PooledApplySeconds float64
	// Mismatches counts pages where the pooled path's verdict differed
	// from Apply's — always 0; the paths are contract-tested
	// bit-identical, and the benchmark cross-checks anyway.
	Mismatches int
	// Precision and Recall score the served extractions against ground
	// truth.
	Precision, Recall float64
}

// ServeBenchmark measures the staged engine's train-once/serve-many
// split: for each site, the one-time cost of BuildModel over the probed
// sample versus the per-page cost of serving a second, fresh probe round
// the model never saw — once through the legacy Model.Apply (parse into a
// cached tree, map-built signature, string-space vectorize) and once
// through the pooled Model.ApplyHTML pipeline (arena parse, scratch
// signature, direct ID-space interning). Timing is serial (one site, one
// page at a time), like the paper's timing figures; the fresh pages are
// also scored against ground truth so the table shows what serving
// quality the latency buys.
func ServeBenchmark(o Options) *ServeResult {
	sites := deepweb.NewSites(o.Sites, o.Seed)
	trainProber := &probe.Prober{Plan: probe.NewPlan(o.DictWords, o.Nonsense, o.Seed+1000), Labeler: deepweb.Labeler()}
	// A different plan seed draws different dictionary probes: the served
	// pages answer queries the training sample never issued.
	serveProber := &probe.Prober{Plan: probe.NewPlan(o.DictWords, o.Nonsense, o.Seed+2000), Labeler: deepweb.Labeler()}

	ctx := context.Background()
	out := &ServeResult{}
	var counter quality.Counter
	for _, s := range sites {
		train := trainProber.ProbeSite(s)

		start := time.Now()
		m := buildServeModel(o, s.ID(), train.Pages)
		out.BuildSeconds += time.Since(start).Seconds()

		fresh := serveProber.ProbeSite(s)

		// Legacy path: Apply over the corpus pages (each page caches its
		// parsed tree and signature on first touch, inside the timed
		// region, exactly as before).
		var pagelets []*core.Pagelet
		start = time.Now()
		for _, p := range fresh.Pages {
			pls, err := m.Apply(p)
			if err != nil {
				//thorlint:allow no-panic-in-lib programmer-error guard; Apply errors only on nil pages or empty models
				panic("experiments: " + err.Error())
			}
			pagelets = append(pagelets, pls...)
		}
		out.LegacyApplySeconds += time.Since(start).Seconds()

		// Pooled path: ApplyHTML over the raw bytes a server would see.
		// The timed loop keeps only the returned path strings; trees,
		// signatures, and vectors live in pooled scratch.
		paths := make([]string, 0, len(fresh.Pages))
		start = time.Now()
		for _, p := range fresh.Pages {
			path, found, err := m.ApplyHTML(ctx, p.HTML)
			if err != nil {
				//thorlint:allow no-panic-in-lib programmer-error guard; ApplyHTML errors only on ctx cancellation or empty models
				panic("experiments: " + err.Error())
			}
			if found {
				paths = append(paths, path)
			}
		}
		out.PooledApplySeconds += time.Since(start).Seconds()
		out.Pages += len(fresh.Pages)

		// Cross-check the two paths' verdicts page for page (outside the
		// timed regions).
		if len(paths) != len(pagelets) {
			out.Mismatches += diffAbs(len(paths), len(pagelets))
		} else {
			for i, pl := range pagelets {
				if paths[i] != pl.Path {
					out.Mismatches++
				}
			}
		}

		c, i, t := core.Score(pagelets, fresh.Pages)
		counter.Add(c, i, t)
	}

	pr := counter.PR()
	out.Precision, out.Recall = pr.Precision, pr.Recall

	res := &TableResult{
		Title:  "staged serving: one-time model build vs per-page apply (fresh probe round)",
		Header: []string{"seconds", "unit-ms", "unit/sec"},
	}
	res.Rows = append(res.Rows, Row{
		Label: "build/site",
		Values: []float64{
			out.BuildSeconds,
			1000 * out.BuildSeconds / float64(len(sites)),
			float64(len(sites)) / out.BuildSeconds,
		},
	})
	res.Rows = append(res.Rows, Row{
		Label: "apply/page",
		Values: []float64{
			out.LegacyApplySeconds,
			1000 * out.LegacyApplySeconds / float64(out.Pages),
			float64(out.Pages) / out.LegacyApplySeconds,
		},
	})
	res.Rows = append(res.Rows, Row{
		Label: "pooled/page",
		Values: []float64{
			out.PooledApplySeconds,
			1000 * out.PooledApplySeconds / float64(out.Pages),
			float64(out.Pages) / out.PooledApplySeconds,
		},
	})
	res.Notes = append(res.Notes,
		"unit = site for the build row, page for the apply rows; seconds are serial totals",
		fmt.Sprintf("pooled ApplyHTML is %.1fx the legacy Apply row (%d verdict mismatches; contract says 0)",
			out.LegacyApplySeconds/out.PooledApplySeconds, out.Mismatches),
		fmt.Sprintf("served %d fresh pages: precision %.3f, recall %.3f", out.Pages, pr.Precision, pr.Recall),
	)
	out.TableResult = res
	return out
}

func diffAbs(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}
