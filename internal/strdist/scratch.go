package strdist

// LevScratch holds the reusable dynamic-programming rows of the
// scratch-backed edit-distance entry points, so the pooled apply path
// computes path distances without per-call row allocations. The zero value
// is ready to use; rows grow to the longest operand seen and stay.
type LevScratch struct {
	prev, cur []int
}

// rows returns the two DP rows sized for an inner operand of length n.
func (s *LevScratch) rows(n int) ([]int, []int) {
	if cap(s.prev) < n+1 {
		s.prev = make([]int, n+1)
		s.cur = make([]int, n+1)
	}
	return s.prev[:n+1], s.cur[:n+1]
}

// LevenshteinBytes returns the edit distance between a string and a byte
// slice using the scratch's rows — the same distance Levenshtein(a,
// string(b)) returns, without converting b or allocating rows. Edit
// distance is an integer, so there is no bit-identity subtlety: any
// correct evaluation order yields the same value. The two loops below
// mirror Levenshtein's keep-the-inner-loop-short swap.
func LevenshteinBytes(a string, b []byte, s *LevScratch) int {
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	if len(a) >= len(b) {
		prev, cur := s.rows(len(b))
		for j := range prev {
			prev[j] = j
		}
		for i := 1; i <= len(a); i++ {
			cur[0] = i
			ca := a[i-1]
			for j := 1; j <= len(b); j++ {
				cost := 1
				if ca == b[j-1] {
					cost = 0
				}
				cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			}
			prev, cur = cur, prev
		}
		return prev[len(b)]
	}
	prev, cur := s.rows(len(a))
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(b); i++ {
		cur[0] = i
		cb := b[i-1]
		for j := 1; j <= len(a); j++ {
			cost := 1
			if cb == a[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(a)]
}

// NormalizedBytes is Normalized with the second operand as a byte slice
// and scratch-backed rows: bit-identical to Normalized(a, string(b)) —
// the integer distance is exact and the final division is the same two
// operands in the same order.
func NormalizedBytes(a string, b []byte, s *LevScratch) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	d := LevenshteinBytes(a, b, s)
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	return float64(d) / float64(m)
}
