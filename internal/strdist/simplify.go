package strdist

import (
	"strings"
	"sync"
)

// Simplifier maps tag names to unique fixed-length identifiers of q letters
// each, as prescribed for path comparison in Section 3.2.1 of the paper:
// "we first simplify each tag name to a unique identifier of fixed length of
// q letters. This ensures that comparing longer tags with shorter tags will
// not perversely affect the distance metric."
//
// With q=1 the paper's example maps html→h, head→e, and so on; identifiers
// are assigned on first sight, preferring a letter of the tag itself when
// available so simplified paths stay readable. A Simplifier is safe for
// concurrent use.
type Simplifier struct {
	q  int
	mu sync.Mutex
	// assigned maps tag name -> identifier.
	assigned map[string]string
	// used tracks identifiers already handed out.
	used map[string]bool
	// next is the counter used to mint fresh identifiers when all
	// preferred letters are taken.
	next int
}

// NewSimplifier returns a Simplifier producing identifiers of q letters.
// q must be at least 1.
func NewSimplifier(q int) *Simplifier {
	if q < 1 {
		q = 1
	}
	return &Simplifier{
		q:        q,
		assigned: make(map[string]string),
		used:     make(map[string]bool),
	}
}

// ID returns the identifier for tag, assigning a new one on first use.
func (s *Simplifier) ID(tag string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.assigned[tag]; ok {
		return id
	}
	id := s.mint(tag)
	s.assigned[tag] = id
	s.used[id] = true
	return id
}

// mint produces a fresh identifier, preferring prefixes/letters of the tag.
func (s *Simplifier) mint(tag string) string {
	// Try each letter of the tag padded/truncated to length q.
	for i := 0; i < len(tag); i++ {
		cand := pad(tag[i:], s.q)
		if !s.used[cand] {
			return cand
		}
	}
	// Fall back to a counter rendered in base 26.
	for {
		cand := counterID(s.next, s.q)
		s.next++
		if !s.used[cand] {
			return cand
		}
	}
}

func pad(src string, q int) string {
	if len(src) >= q {
		return src[:q]
	}
	return src + strings.Repeat("z", q-len(src))
}

func counterID(n, q int) string {
	// Base-26 rendering with minimum width q. Once the 26^q fixed-width
	// identifiers are exhausted the width grows, trading the fixed-length
	// guarantee for uniqueness — HTML's real tag inventory fits well
	// within 26^q identifiers for any q, so growth only matters for
	// adversarial input.
	var digits []byte
	for n > 0 {
		digits = append(digits, byte('a'+n%26))
		n /= 26
	}
	for len(digits) < q {
		digits = append(digits, 'a')
	}
	for i, j := 0, len(digits)-1; i < j; i, j = i+1, j-1 {
		digits[i], digits[j] = digits[j], digits[i]
	}
	return string(digits)
}

// SimplifyPath rewrites a '/'-separated tag path into its simplified form
// with no separators, e.g. with q=1: "html/head/title" → "het". Positional
// indexes like "[3]" (the paper's html/body/table[3] notation) are kept as
// digits appended to the step's identifier, so two same-named siblings at
// different positions — say a navigation div and a results div — remain
// distinguishable to the edit distance while costing only one edit.
func (s *Simplifier) SimplifyPath(path string) string {
	var b strings.Builder
	for _, stepStr := range strings.Split(path, "/") {
		if stepStr == "" {
			continue
		}
		idx := ""
		if i := strings.IndexByte(stepStr, '['); i >= 0 {
			idx = strings.TrimSuffix(stepStr[i+1:], "]")
			stepStr = stepStr[:i]
		}
		b.WriteString(s.ID(stepStr))
		b.WriteString(idx)
	}
	return b.String()
}

// PathDistance returns the normalized edit distance between two simplified
// tag paths: EditDist(P_i, P_j) / max(len(P_i), len(P_j)), the first term of
// THOR's subtree distance function.
func (s *Simplifier) PathDistance(pathA, pathB string) float64 {
	return Normalized(s.SimplifyPath(pathA), s.SimplifyPath(pathB))
}
