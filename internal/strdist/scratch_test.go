package strdist

import (
	"math"
	"math/rand"
	"testing"
)

// TestLevenshteinBytesMatchesString pins the scratch-backed byte entry
// points to the string originals on edge cases and random operand pairs —
// including the length-swap boundary both implementations share.
func TestLevenshteinBytesMatchesString(t *testing.T) {
	var s LevScratch
	check := func(a, b string) {
		t.Helper()
		if got, want := LevenshteinBytes(a, []byte(b), &s), Levenshtein(a, b); got != want {
			t.Errorf("LevenshteinBytes(%q, %q) = %d, want %d", a, b, got, want)
		}
		gotN, wantN := NormalizedBytes(a, []byte(b), &s), Normalized(a, b)
		if math.Float64bits(gotN) != math.Float64bits(wantN) {
			t.Errorf("NormalizedBytes(%q, %q) = %x, want %x", a, b, gotN, wantN)
		}
	}
	check("", "")
	check("", "abc")
	check("abc", "")
	check("kitten", "sitting")
	check("a", "a")
	check("short", "a much longer operand")

	rng := rand.New(rand.NewSource(5))
	alphabet := "abXY/[]01"
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return string(b)
	}
	for trial := 0; trial < 300; trial++ {
		check(randStr(rng.Intn(24)), randStr(rng.Intn(24)))
	}
}

// TestLevScratchReuseAcrossSizes interleaves small and large operands on
// one scratch so stale row contents from a bigger computation would
// corrupt a smaller one if any cell were read before written.
func TestLevScratchReuseAcrossSizes(t *testing.T) {
	var s LevScratch
	pairs := [][2]string{
		{"abcdefghijklmnop", "ponmlkjihgfedcba"},
		{"ab", "ba"},
		{"xyxyxyxyxyxyxyxyxyxyxyxy", "yx"},
		{"a", ""},
		{"same", "same"},
	}
	for round := 0; round < 3; round++ {
		for _, p := range pairs {
			if got, want := LevenshteinBytes(p[0], []byte(p[1]), &s), Levenshtein(p[0], p[1]); got != want {
				t.Fatalf("round %d: LevenshteinBytes(%q, %q) = %d, want %d", round, p[0], p[1], got, want)
			}
		}
	}
}
