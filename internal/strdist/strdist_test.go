package strdist

import (
	"testing"
	"testing/quick"
)

func TestLevenshteinKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"a", "", 1},
		{"", "abc", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		// The paper's own example (Section 3.2.1): cat → cake is two
		// edits — change 't' to 'k' and add an 'e'.
		{"cat", "cake", 2},
		{"he", "het", 1}, // the paper's simplified-path example
		{"flaw", "lawn", 2},
		{"intention", "execution", 5},
		{"ab", "ba", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Levenshtein(c.b, c.a); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestLevenshteinRunes(t *testing.T) {
	if got := LevenshteinRunes("héllo", "hello"); got != 1 {
		t.Errorf("rune distance = %d, want 1", got)
	}
	if got := LevenshteinRunes("日本語", "日本"); got != 1 {
		t.Errorf("rune distance = %d, want 1", got)
	}
	if got := LevenshteinRunes("", "日本"); got != 2 {
		t.Errorf("rune distance = %d, want 2", got)
	}
}

func TestLevenshteinMetricProperties(t *testing.T) {
	// Identity, symmetry, triangle inequality on random short strings.
	type triple struct{ A, B, C string }
	property := func(tr triple) bool {
		ab := Levenshtein(tr.A, tr.B)
		ba := Levenshtein(tr.B, tr.A)
		if ab != ba {
			return false
		}
		if Levenshtein(tr.A, tr.A) != 0 {
			return false
		}
		ac := Levenshtein(tr.A, tr.C)
		cb := Levenshtein(tr.C, tr.B)
		return ab <= ac+cb
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalizedBounds(t *testing.T) {
	if got := Normalized("", ""); got != 0 {
		t.Errorf("Normalized empty = %v", got)
	}
	if got := Normalized("abc", "abc"); got != 0 {
		t.Errorf("Normalized equal = %v", got)
	}
	if got := Normalized("abc", "xyz"); got != 1 {
		t.Errorf("Normalized disjoint same-length = %v, want 1", got)
	}
	// The paper's example: paths "he" vs "het" → 1 edit / 3 = 1/3.
	if got := Normalized("he", "het"); got < 0.333 || got > 0.334 {
		t.Errorf("Normalized(he, het) = %v, want 1/3", got)
	}
	property := func(a, b string) bool {
		n := Normalized(a, b)
		return n >= 0 && n <= 1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSimplifierPaperExample(t *testing.T) {
	// Section 3.2.1: with q=1, html→h, head→e (h is taken), title→t, so
	// html/head → "he" and html/head/title → "het"; their distance is 1,
	// scaled to 1/3.
	s := NewSimplifier(1)
	if got := s.SimplifyPath("html/head"); got != "he" {
		t.Errorf("SimplifyPath(html/head) = %q, want he", got)
	}
	if got := s.SimplifyPath("html/head/title"); got != "het" {
		t.Errorf("SimplifyPath(html/head/title) = %q, want het", got)
	}
	if got := s.PathDistance("html/head", "html/head/title"); got < 0.333 || got > 0.334 {
		t.Errorf("PathDistance = %v, want 1/3", got)
	}
}

func TestSimplifierUniqueIDs(t *testing.T) {
	s := NewSimplifier(1)
	// 24 distinct tags fit within the 26 single-letter identifiers.
	tags := []string{"html", "head", "body", "table", "tr", "td", "th",
		"title", "thead", "tbody", "tfoot", "b", "h1", "h2", "hr", "br",
		"div", "dl", "dt", "dd", "data", "em", "time", "base"}
	seen := make(map[string]string)
	for _, tag := range tags {
		id := s.ID(tag)
		if len(id) != 1 {
			t.Errorf("ID(%q) = %q, want length 1", tag, id)
		}
		if prev, dup := seen[id]; dup {
			t.Errorf("ID collision: %q and %q both map to %q", prev, tag, id)
		}
		seen[id] = tag
	}
	// Stable across calls.
	for _, tag := range tags {
		if s.ID(tag) != func() string { return seen2(seen, tag) }() {
			t.Errorf("ID(%q) changed between calls", tag)
		}
	}
}

func seen2(seen map[string]string, tag string) string {
	for id, tg := range seen {
		if tg == tag {
			return id
		}
	}
	return ""
}

func TestSimplifierLongerQ(t *testing.T) {
	s := NewSimplifier(3)
	id := s.ID("table")
	if len(id) != 3 {
		t.Errorf("q=3 ID length = %d", len(id))
	}
	// Short tags are padded to length q.
	if got := s.ID("b"); len(got) != 3 {
		t.Errorf("padded ID = %q, want length 3", got)
	}
}

func TestSimplifyPathKeepsIndexDigits(t *testing.T) {
	s := NewSimplifier(1)
	a := s.SimplifyPath("html/body/table[3]")
	b := s.SimplifyPath("html/body/table[1]")
	if a == b {
		t.Errorf("positional indexes lost: %q == %q", a, b)
	}
	if Levenshtein(a, b) != 1 {
		t.Errorf("index difference should cost one edit: %q vs %q", a, b)
	}
	// Non-indexed and indexed steps differ only by the digits.
	c := s.SimplifyPath("html/body/table")
	if Levenshtein(a, c) != 1 {
		t.Errorf("dropping an index should cost one edit: %q vs %q", a, c)
	}
}

func TestSimplifierConcurrentUse(t *testing.T) {
	s := NewSimplifier(1)
	done := make(chan map[string]string, 8)
	tags := []string{"html", "head", "body", "table", "tr", "td", "div", "span"}
	for g := 0; g < 8; g++ {
		go func() {
			m := make(map[string]string)
			for _, tag := range tags {
				m[tag] = s.ID(tag)
			}
			done <- m
		}()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		m := <-done
		for tag, id := range m {
			if first[tag] != id {
				t.Errorf("concurrent ID(%q) disagreement: %q vs %q", tag, first[tag], id)
			}
		}
	}
}

func TestCounterIDFallback(t *testing.T) {
	// More distinct tags than single-letter identifiers: the simplifier
	// must keep every ID unique (growing beyond one letter when the
	// 26-letter space is exhausted) and must not loop forever.
	s := NewSimplifier(1)
	ids := make(map[string]string)
	for i := 0; i < 60; i++ {
		tag := "tag" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		id := s.ID(tag)
		if id == "" {
			t.Fatalf("empty id for %q", tag)
		}
		if prev, dup := ids[id]; dup {
			t.Fatalf("duplicate id %q for %q and %q", id, prev, tag)
		}
		ids[id] = tag
	}
}
