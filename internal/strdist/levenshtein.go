// Package strdist provides string edit distance (Levenshtein [21]) and the
// tag-path simplification THOR uses when comparing subtree paths
// (Section 3.2.1): each tag name is mapped to a fixed-length identifier so
// that long tag names do not perversely dominate the distance.
package strdist

// Levenshtein returns the edit distance between a and b: the minimum number
// of single-character insertions, deletions, and substitutions that
// transform one into the other. It operates on bytes, which is exact for
// the ASCII identifiers produced by Simplify.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	if len(a) == 0 {
		return len(b)
	}
	if len(b) == 0 {
		return len(a)
	}
	// Keep the inner loop over the shorter string.
	if len(b) > len(a) {
		a, b = b, a
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// LevenshteinRunes is Levenshtein over Unicode code points; use it when
// inputs may contain multi-byte characters (e.g. URL clustering of
// internationalized URLs).
func LevenshteinRunes(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(rb) > len(ra) {
		ra, rb = rb, ra
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// Normalized returns the edit distance between a and b divided by the
// length of the longer string, yielding a value in [0,1]. Two empty strings
// have distance 0.
func Normalized(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	d := Levenshtein(a, b)
	m := len(a)
	if len(b) > m {
		m = len(b)
	}
	return float64(d) / float64(m)
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}
