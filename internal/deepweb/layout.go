package deepweb

import (
	"fmt"
	"math/rand"
	"strings"

	"thor/internal/probe"
)

// ResultStyle selects the markup family a site uses for its result list.
type ResultStyle int

const (
	// StyleTable renders results as table rows.
	StyleTable ResultStyle = iota
	// StyleUL renders results as an unordered list.
	StyleUL
	// StyleOL renders results as an ordered list.
	StyleOL
	// StyleDivList renders results as a column of divs.
	StyleDivList
	// StyleDL renders results as a definition list.
	StyleDL
	numResultStyles
)

// AdPosition selects where the dynamic advertisement region appears.
type AdPosition int

const (
	// AdTop places the ad above the results.
	AdTop AdPosition = iota
	// AdBottom places the ad below the results.
	AdBottom
	// AdSide places the ad in a sidebar table cell.
	AdSide
	numAdPositions
)

// Layout is a site's presentation template: the set of structural choices
// that make its dynamically generated pages look different from every
// other site's, while staying consistent across that site's own pages —
// the "handful of templates per site" regularity THOR exploits
// (Section 3, structural relevance).
type Layout struct {
	ResultStyle ResultStyle
	AdPos       AdPosition
	NavAsTable  bool // navigation bar as a table instead of a list
	WrapDepth   int  // extra div nesting around the results region (0–2)
	HeaderTag   string
	DetailAsDL  bool // single-match detail as <dl> instead of <table>
	LinkTitles  bool // first field rendered as a hyperlink
	UseFontTags bool // 1990s-style <font> decoration
	BoldLabels  bool // field labels in <b>
}

// randomLayout draws a layout deterministically from rng.
func randomLayout(rng *rand.Rand) Layout {
	headers := []string{"h1", "h2", "h3"}
	return Layout{
		ResultStyle: ResultStyle(rng.Intn(int(numResultStyles))),
		AdPos:       AdPosition(rng.Intn(int(numAdPositions))),
		NavAsTable:  rng.Intn(2) == 0,
		WrapDepth:   rng.Intn(3),
		HeaderTag:   headers[rng.Intn(len(headers))],
		DetailAsDL:  rng.Intn(2) == 0,
		LinkTitles:  rng.Intn(3) > 0,
		UseFontTags: rng.Intn(3) == 0,
		BoldLabels:  rng.Intn(2) == 0,
	}
}

// chrome is the static page furniture generated once per site: navigation
// links, boilerplate paragraphs, footer text, and the advertisement
// inventory the ad region rotates through.
type chrome struct {
	title     string
	navLinks  []string
	boiler    []string
	footer    string
	ads       []string
	tagline   string
	searchTip string
}

func newChrome(name string, rng *rand.Rand) chrome {
	dict := probe.Dictionary()
	para := func(words int) string {
		parts := make([]string, words)
		for i := range parts {
			parts[i] = dict[rng.Intn(len(dict))]
		}
		s := strings.Join(parts, " ")
		return strings.ToUpper(s[:1]) + s[1:] + "."
	}
	navCount := 4 + rng.Intn(4)
	nav := make([]string, navCount)
	navWords := []string{"Home", "Browse", "Categories", "New Arrivals",
		"Bestsellers", "About Us", "Help", "Contact", "My Account", "Deals"}
	rng.Shuffle(len(navWords), func(i, j int) { navWords[i], navWords[j] = navWords[j], navWords[i] })
	copy(nav, navWords[:navCount])
	boilerCount := 2 + rng.Intn(3)
	boiler := make([]string, boilerCount)
	for i := range boiler {
		boiler[i] = para(25 + rng.Intn(20))
	}
	ads := make([]string, 8)
	for i := range ads {
		ads[i] = "Sponsored: " + para(6+rng.Intn(6))
	}
	return chrome{
		title:     name,
		navLinks:  nav,
		boiler:    boiler,
		footer:    fmt.Sprintf("Copyright 2003 %s. All rights reserved. %s", name, para(10)),
		ads:       ads,
		tagline:   para(8),
		searchTip: "Tip: " + para(12),
	}
}

// pageBuilder assembles a page from chrome + layout, inserting the
// class-specific body supplied by the caller.
type pageBuilder struct {
	layout Layout
	chrome chrome
	// sideAd holds the rendered sidebar ad for AdSide layouts; the caller
	// sets it before invoking page.
	sideAd string
}

func (pb *pageBuilder) page(query string, bodyFn func(b *strings.Builder)) string {
	var b strings.Builder
	b.WriteString("<html><head><title>")
	b.WriteString(pb.chrome.title)
	b.WriteString("</title><style>body{font-family:arial}</style>")
	b.WriteString(`<meta name="generator" content="sitegen/1.0"></head><body>`)
	pb.header(&b)
	pb.nav(&b)
	pb.searchForm(&b, query)
	// Real answer pages carry per-page structural jitter: optional promo
	// lines and notices appear on some responses and not others, shifting
	// the sibling positions of everything after them. This keeps path
	// identity from being a perfect matching oracle (Figure 8's P metric).
	// The jitter deliberately reuses tags that occur throughout the page
	// (p, a) so it perturbs positions, not tag signatures.
	// The promo is a div so it steals the sibling position of later divs
	// (such as the results container) on the pages where it appears.
	if hashString(query+"|promo")%4 == 0 {
		fmt.Fprintf(&b, `<div class="promo"><a href="/deals">%s</a></div>`, pb.chrome.tagline)
	}
	if hashString(query+"|notice")%5 == 0 {
		fmt.Fprintf(&b, `<p class="notice">%s</p>`, pb.chrome.searchTip)
	}
	if pb.layout.AdPos == AdSide {
		b.WriteString(`<table width="100%"><tr><td>`)
	}
	bodyFn(&b)
	if pb.layout.AdPos == AdSide {
		b.WriteString(`</td><td valign="top">`)
		// Sidebar ad slot is filled by the body function via adRegion when
		// positioned top/bottom; the side slot is written here by the
		// caller storing the ad in pb.sideAd.
		b.WriteString(pb.sideAd)
		b.WriteString("</td></tr></table>")
	}
	pb.boilerplate(&b)
	pb.footer(&b)
	b.WriteString("</body></html>")
	return b.String()
}

func (pb *pageBuilder) header(b *strings.Builder) {
	h := pb.layout.HeaderTag
	fmt.Fprintf(b, `<%s><img src="/logo.gif" alt="logo"> %s</%s>`, h, pb.chrome.title, h)
	fmt.Fprintf(b, "<p class=\"tagline\"><span>%s</span></p>", pb.chrome.tagline)
}

func (pb *pageBuilder) nav(b *strings.Builder) {
	if pb.layout.NavAsTable {
		b.WriteString(`<table class="nav"><tr>`)
		for _, l := range pb.chrome.navLinks {
			fmt.Fprintf(b, `<td><a href="/%s">%s</a></td>`, slug(l), l)
		}
		b.WriteString("</tr></table>")
		return
	}
	b.WriteString(`<ul class="nav">`)
	for _, l := range pb.chrome.navLinks {
		fmt.Fprintf(b, `<li><a href="/%s">%s</a>`, slug(l), l)
	}
	b.WriteString("</ul>")
}

func (pb *pageBuilder) boilerplate(b *strings.Builder) {
	b.WriteString(`<div class="about">`)
	for _, p := range pb.chrome.boiler {
		fmt.Fprintf(b, "<p>%s</p>", p)
	}
	b.WriteString("</div>")
	fmt.Fprintf(b, "<p class=\"tip\">%s</p>", pb.chrome.searchTip)
}

func (pb *pageBuilder) footer(b *strings.Builder) {
	fmt.Fprintf(b, `<div class="footer"><hr><small>%s</small><br><small>Served by %s</small></div>`,
		pb.chrome.footer, pb.chrome.title)
}

// searchForm renders the site's search interface — the query front-end the
// prober submits keywords to.
func (pb *pageBuilder) searchForm(b *strings.Builder, query string) {
	fmt.Fprintf(b, `<form action="/search" method="get">`+
		`<label>Search:</label> <input type="text" name="q" value="%s">`+
		`<select name="scope"><option>All</option><option>Titles</option></select>`+
		`<input type="submit" value="Go"></form>`, query)
}

// adRegion renders the dynamic advertisement: content rotates with the
// query, making it dynamically generated but *not* query-answer content —
// exactly the confusion source the paper reports in Section 4.2.
func (pb *pageBuilder) adRegion(query string) string {
	ad := pb.chrome.ads[hashString(query)%uint32(len(pb.chrome.ads))]
	if pb.layout.UseFontTags {
		return fmt.Sprintf(`<div class="ad"><font color="red">%s</font></div>`, ad)
	}
	return fmt.Sprintf(`<div class="ad"><em>%s</em></div>`, ad)
}

func slug(s string) string {
	return strings.ToLower(strings.ReplaceAll(s, " ", "-"))
}

func hashString(s string) uint32 {
	// FNV-1a.
	var h uint32 = 2166136261
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
