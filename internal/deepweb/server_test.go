package deepweb

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"thor/internal/corpus"
	"thor/internal/probe"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, string(body)
}

func TestSiteHandlerSearch(t *testing.T) {
	site := NewSite(SiteConfig{ID: 0, Seed: 42, DisableErrors: true})
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	// Find a multi-match keyword.
	var kw string
	for _, w := range probe.Dictionary() {
		if site.ClassFor(w) == corpus.MultiMatch {
			kw = w
			break
		}
	}
	code, body := get(t, srv, "/search?q="+kw)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	want, _ := site.Query(kw)
	if body != want {
		t.Error("served page differs from Query output")
	}
}

func TestSiteHandlerErrorStatus(t *testing.T) {
	site := NewSite(SiteConfig{ID: 0, Seed: 42, ErrEvery: 2})
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()
	var kw string
	for _, w := range probe.Dictionary() {
		if site.ClassFor(w) == corpus.ErrorPage {
			kw = w
			break
		}
	}
	if kw == "" {
		t.Skip("no error keyword found")
	}
	code, body := get(t, srv, "/search?q="+kw)
	if code != http.StatusInternalServerError {
		t.Errorf("error page status = %d, want 500", code)
	}
	if !strings.Contains(body, "Internal Server Error") {
		t.Errorf("error body missing marker")
	}
}

func TestSiteHandlerFrontPage(t *testing.T) {
	site := NewSite(SiteConfig{ID: 1, Seed: 42})
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()
	code, body := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("front page status = %d", code)
	}
	if !strings.Contains(body, "<form") || !strings.Contains(body, site.Name()) {
		t.Errorf("front page missing search form or site name")
	}
	code, _ = get(t, srv, "/nonexistent")
	if code != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", code)
	}
}

func TestFarmRouting(t *testing.T) {
	farm := NewFarm(3, 42)
	srv := httptest.NewServer(farm.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/")
	if code != http.StatusOK {
		t.Fatalf("directory status = %d", code)
	}
	for _, s := range farm.Sites {
		if !strings.Contains(body, s.Name()) {
			t.Errorf("directory missing site %q", s.Name())
		}
	}

	code, body = get(t, srv, "/site/1/search?q=music")
	if code != http.StatusOK && code != http.StatusInternalServerError {
		t.Fatalf("farm search status = %d", code)
	}
	want, _ := farm.Sites[1].Query("music")
	if body != want {
		t.Error("farm routed to wrong site")
	}

	code, _ = get(t, srv, "/site/99/search?q=x")
	if code != http.StatusNotFound {
		t.Errorf("unknown site status = %d, want 404", code)
	}
}

// TestProbeOverHTTP closes the loop: a prober driving the site through a
// real HTTP round trip collects the same pages as direct calls.
type httpSite struct {
	id   int
	name string
	base string
}

func (h *httpSite) ID() int      { return h.id }
func (h *httpSite) Name() string { return h.name }
func (h *httpSite) Query(kw string) (string, string) {
	url := h.base + "/search?q=" + kw
	resp, err := http.Get(url)
	if err != nil {
		return "", url
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body), url
}

func TestProbeOverHTTP(t *testing.T) {
	site := NewSite(SiteConfig{ID: 2, Seed: 42})
	srv := httptest.NewServer(site.Handler())
	defer srv.Close()

	remote := &httpSite{id: site.ID(), name: site.Name(), base: srv.URL}
	pr := &probe.Prober{Plan: probe.NewPlan(20, 2, 1)}
	col := pr.ProbeSite(remote)
	if len(col.Pages) != 22 {
		t.Fatalf("probed %d pages over HTTP", len(col.Pages))
	}
	for _, p := range col.Pages {
		direct, _ := site.Query(p.Query)
		if p.HTML != direct {
			t.Fatalf("HTTP page for %q differs from direct query", p.Query)
		}
	}
}
