package deepweb

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"thor/internal/corpus"
)

// Handler returns an http.Handler serving the site's dynamic pages, so a
// simulated deep-web source can be probed over a real network stack:
//
//	GET /search?q=keyword  → the dynamically generated answer page
//	GET /                  → the site's search form (a no-query front page)
//
// The handler is stateless and safe for concurrent use.
func (s *Site) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		page := 1
		if p := r.URL.Query().Get("page"); p != "" {
			if n, err := strconv.Atoi(p); err == nil {
				page = n
			}
		}
		html, _ := s.QueryPage(q, page)
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		if s.ClassFor(q) == corpus.ErrorPage {
			w.WriteHeader(http.StatusInternalServerError)
		}
		//thorlint:allow no-unchecked-error a failed response write means the client went away
		fmt.Fprint(w, html)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		//thorlint:allow no-unchecked-error a failed response write means the client went away
		fmt.Fprint(w, s.frontPage())
	})
	return mux
}

// frontPage renders the site's static entry page with its search form —
// the kind of page a crawler can reach, behind which the deep-web content
// hides.
func (s *Site) frontPage() string {
	pb := &s.builder
	pb.sideAd = pb.adRegion("")
	return pb.page("", func(b *strings.Builder) {
		fmt.Fprintf(b, "<h4>Welcome to %s</h4>", s.name)
		fmt.Fprintf(b, "<p>Search our database of %d %s records using the form above.</p>",
			s.db.NumRecords(), s.db.Schema.Name)
	})
}

// Farm serves many simulated sites under one handler, routed by a site
// query parameter or path prefix /site/<id>/search. It lets one test
// server stand in for a whole deep web.
type Farm struct {
	Sites []*Site
}

// NewFarm builds a farm over n generated sites.
func NewFarm(n int, seed int64) *Farm {
	return &Farm{Sites: NewSites(n, seed)}
}

// Handler routes /site/<id>/... to the corresponding site's handler and
// serves a directory of sites at the root.
func (f *Farm) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, s := range f.Sites {
		prefix := fmt.Sprintf("/site/%d", s.ID())
		mux.Handle(prefix+"/", http.StripPrefix(prefix, s.Handler()))
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		//thorlint:allow no-unchecked-error a failed response write means the client went away
		fmt.Fprint(w, f.directory())
	})
	return mux
}

func (f *Farm) directory() string {
	var b strings.Builder
	b.WriteString("<html><head><title>Simulated Deep Web</title></head><body><h1>Sites</h1><ul>")
	sites := append([]*Site(nil), f.Sites...)
	sort.Slice(sites, func(i, j int) bool { return sites[i].ID() < sites[j].ID() })
	for _, s := range sites {
		fmt.Fprintf(&b, `<li><a href="/site/%d/">%s</a> (%d records)</li>`,
			s.ID(), s.Name(), s.Database().NumRecords())
	}
	b.WriteString("</ul></body></html>")
	return b.String()
}
