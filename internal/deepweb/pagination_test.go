package deepweb

import (
	"strings"
	"testing"

	"thor/internal/corpus"
	"thor/internal/probe"
)

// hotKeyword finds a keyword matching more records than one page shows.
func hotKeyword(t *testing.T, site *Site) string {
	t.Helper()
	for _, w := range probe.Dictionary() {
		if site.ClassFor(w) == corpus.MultiMatch && site.NumPages(w) >= 3 {
			return w
		}
	}
	t.Skip("no keyword spans 3+ pages")
	return ""
}

func TestQueryPagePartitionsResults(t *testing.T) {
	site := NewSite(SiteConfig{ID: 0, Seed: 42, MaxResults: 5, DisableErrors: true})
	kw := hotKeyword(t, site)
	total := site.NumPages(kw)
	matches := len(site.Database().Search(kw))

	seen := 0
	for p := 1; p <= total; p++ {
		html, url := site.QueryPage(kw, p)
		page := &corpus.Page{HTML: html}
		objs := len(page.TruthObjects())
		if objs == 0 || objs > 5 {
			t.Fatalf("page %d shows %d objects", p, objs)
		}
		seen += objs
		if p > 1 && !strings.Contains(url, "page=") {
			t.Errorf("page %d url %q lacks page param", p, url)
		}
	}
	if seen != matches {
		t.Errorf("pagination covered %d of %d matches", seen, matches)
	}
}

func TestQueryPagePagerLinks(t *testing.T) {
	site := NewSite(SiteConfig{ID: 0, Seed: 42, MaxResults: 5, DisableErrors: true})
	kw := hotKeyword(t, site)
	total := site.NumPages(kw)

	first, _ := site.QueryPage(kw, 1)
	if !strings.Contains(first, ">Next<") || strings.Contains(first, ">Previous<") {
		t.Errorf("first page pager wrong")
	}
	mid, _ := site.QueryPage(kw, 2)
	if !strings.Contains(mid, ">Next<") || !strings.Contains(mid, ">Previous<") {
		t.Errorf("middle page pager wrong")
	}
	last, _ := site.QueryPage(kw, total)
	if strings.Contains(last, ">Next<") || !strings.Contains(last, ">Previous<") {
		t.Errorf("last page pager wrong")
	}
}

func TestQueryPageClamps(t *testing.T) {
	site := NewSite(SiteConfig{ID: 0, Seed: 42, MaxResults: 5, DisableErrors: true})
	kw := hotKeyword(t, site)
	total := site.NumPages(kw)
	beyond, _ := site.QueryPage(kw, total+10)
	lastPage, _ := site.QueryPage(kw, total)
	if beyond != lastPage {
		t.Error("page beyond the last did not clamp")
	}
	neg, _ := site.QueryPage(kw, -3)
	first, _ := site.QueryPage(kw, 1)
	if neg != first {
		t.Error("negative page did not clamp to first")
	}
}

func TestNumPagesNonMulti(t *testing.T) {
	site := NewSite(SiteConfig{ID: 0, Seed: 42, DisableErrors: true})
	if got := site.NumPages("xqnonsense"); got != 1 {
		t.Errorf("no-match NumPages = %d", got)
	}
}

func TestSinglePageQueryUnchanged(t *testing.T) {
	site := NewSite(SiteConfig{ID: 0, Seed: 42})
	for _, w := range probe.Dictionary()[:40] {
		q, _ := site.Query(w)
		qp, _ := site.QueryPage(w, 1)
		if q != qp {
			t.Fatalf("Query and QueryPage(1) differ for %q", w)
		}
	}
}

func TestProberFollowsPagination(t *testing.T) {
	site := NewSite(SiteConfig{ID: 0, Seed: 42, MaxResults: 5, DisableErrors: true})
	kw := hotKeyword(t, site)
	plan := probe.Plan{DictionaryWords: []string{kw}}

	flat := &probe.Prober{Plan: plan, Labeler: Labeler()}
	if got := len(flat.ProbeSite(site).Pages); got != 1 {
		t.Fatalf("non-paginating prober collected %d pages", got)
	}

	deep := &probe.Prober{Plan: plan, Labeler: Labeler(), MaxPages: 2}
	col := deep.ProbeSite(site)
	if got := len(col.Pages); got != 2 {
		t.Fatalf("paginating prober collected %d pages, want 2", got)
	}
	for _, p := range col.Pages {
		if p.Class != corpus.MultiMatch {
			t.Errorf("paginated page labeled %v", p.Class)
		}
		if p.Query != kw {
			t.Errorf("paginated page query %q", p.Query)
		}
	}
	if col.Pages[0].URL == col.Pages[1].URL {
		t.Error("paginated pages share a URL")
	}
}
