package deepweb

import (
	"math/rand"
	"strings"
	"testing"

	"thor/internal/corpus"
	"thor/internal/htmlx"
	"thor/internal/probe"
)

func TestNewDatabaseDeterministic(t *testing.T) {
	a := NewDatabase(schemaFamilies[0], 50, rand.New(rand.NewSource(1)))
	b := NewDatabase(schemaFamilies[0], 50, rand.New(rand.NewSource(1)))
	if a.NumRecords() != b.NumRecords() {
		t.Fatal("record counts differ")
	}
	for i := range a.Records {
		for _, f := range a.Schema.Fields {
			if a.Records[i][f.Name] != b.Records[i][f.Name] {
				t.Fatalf("record %d field %s differs", i, f.Name)
			}
		}
	}
}

func TestDatabaseIndexFindsEveryToken(t *testing.T) {
	db := NewDatabase(schemaFamilies[2], 40, rand.New(rand.NewSource(2)))
	for i, rec := range db.Records {
		for _, val := range rec {
			for _, tok := range strings.Fields(strings.ToLower(val)) {
				tok = strings.Trim(tok, "$.,")
				if tok == "" {
					continue
				}
				found := false
				for _, id := range db.Search(tok) {
					if id == i {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("token %q of record %d not indexed", tok, i)
				}
			}
		}
	}
	if db.DistinctTokens() == 0 {
		t.Error("empty index")
	}
}

func TestDatabaseSearchMisses(t *testing.T) {
	db := NewDatabase(schemaFamilies[0], 40, rand.New(rand.NewSource(2)))
	if got := db.Search("xqnonsenseword"); len(got) != 0 {
		t.Errorf("nonsense search returned %d records", len(got))
	}
	if got := db.Search("  "); len(got) != 0 {
		t.Errorf("blank search returned %d records", len(got))
	}
}

func TestRareWordsGiveSingleMatches(t *testing.T) {
	// The vocabulary injects rare words into exactly one record each, so a
	// healthy fraction of dictionary words must be single-match.
	site := NewSite(SiteConfig{ID: 0, Seed: 42})
	singles := 0
	for _, w := range probe.Dictionary() {
		if len(site.Database().Search(w)) == 1 {
			singles++
		}
	}
	if singles < 20 {
		t.Errorf("only %d single-match words; vocabulary injection broken?", singles)
	}
}

func TestSiteDeterministic(t *testing.T) {
	a := NewSite(SiteConfig{ID: 5, Seed: 9})
	b := NewSite(SiteConfig{ID: 5, Seed: 9})
	ha, _ := a.Query("music")
	hb, _ := b.Query("music")
	if ha != hb {
		t.Error("same site config produced different pages")
	}
	c := NewSite(SiteConfig{ID: 6, Seed: 9})
	hc, _ := c.Query("music")
	if ha == hc {
		t.Error("different site ids produced identical pages")
	}
}

func TestQueryClassAgreement(t *testing.T) {
	site := NewSite(SiteConfig{ID: 2, Seed: 42})
	for _, w := range probe.Dictionary()[:200] {
		class := site.ClassFor(w)
		html, url := site.Query(w)
		if !strings.Contains(url, "q="+w) {
			t.Errorf("url %q missing query", url)
		}
		page := &corpus.Page{HTML: html, Class: class}
		switch class {
		case corpus.MultiMatch:
			if len(page.TruthPagelets()) != 1 {
				t.Errorf("multi page for %q has %d pagelet markers", w, len(page.TruthPagelets()))
			}
			if len(page.TruthObjects()) < 2 {
				t.Errorf("multi page for %q has %d objects, want ≥ 2", w, len(page.TruthObjects()))
			}
		case corpus.SingleMatch:
			if len(page.TruthPagelets()) != 1 {
				t.Errorf("single page for %q has %d pagelet markers", w, len(page.TruthPagelets()))
			}
		case corpus.NoMatch, corpus.ErrorPage:
			if len(page.TruthPagelets()) != 0 {
				t.Errorf("%v page for %q carries pagelet markers", class, w)
			}
		}
	}
}

func TestAllClassesReachable(t *testing.T) {
	site := NewSite(SiteConfig{ID: 1, Seed: 42})
	var dist [corpus.NumClasses]int
	for _, w := range probe.Dictionary() {
		dist[site.ClassFor(w)]++
	}
	rng := rand.New(rand.NewSource(1))
	for _, w := range probe.NonsenseWords(10, rng) {
		dist[site.ClassFor(w)]++
	}
	for c := corpus.Class(0); c < corpus.NumClasses; c++ {
		if dist[c] == 0 {
			t.Errorf("class %v unreachable over full dictionary", c)
		}
	}
}

func TestNonsenseWordsNeverMatch(t *testing.T) {
	site := NewSite(SiteConfig{ID: 3, Seed: 42, DisableErrors: true})
	rng := rand.New(rand.NewSource(8))
	for _, w := range probe.NonsenseWords(25, rng) {
		if got := site.ClassFor(w); got != corpus.NoMatch {
			t.Errorf("nonsense word %q class = %v, want no-match", w, got)
		}
	}
}

func TestMaxResultsCap(t *testing.T) {
	site := NewSite(SiteConfig{ID: 0, Seed: 42, MaxResults: 4, DisableErrors: true})
	for _, w := range probe.Dictionary()[:300] {
		if site.ClassFor(w) != corpus.MultiMatch {
			continue
		}
		html, _ := site.Query(w)
		page := &corpus.Page{HTML: html}
		if got := len(page.TruthObjects()); got > 4 {
			t.Fatalf("query %q shows %d objects, cap is 4", w, got)
		}
	}
}

func TestErrEveryDisablesErrors(t *testing.T) {
	site := NewSite(SiteConfig{ID: 0, Seed: 42, DisableErrors: true})
	for _, w := range probe.Dictionary() {
		if site.ClassFor(w) == corpus.ErrorPage {
			t.Fatalf("error page served with DisableErrors")
		}
	}
}

func TestLayoutDiversity(t *testing.T) {
	sites := NewSites(50, 42)
	layouts := make(map[Layout]bool)
	for _, s := range sites {
		layouts[s.Layout()] = true
	}
	if len(layouts) < 25 {
		t.Errorf("only %d distinct layouts across 50 sites", len(layouts))
	}
	// Multiple result styles represented.
	styles := make(map[ResultStyle]bool)
	for _, s := range sites {
		styles[s.Layout().ResultStyle] = true
	}
	if len(styles) < 4 {
		t.Errorf("only %d result styles in use", len(styles))
	}
}

func TestPagesParseCleanly(t *testing.T) {
	site := NewSite(SiteConfig{ID: 4, Seed: 42})
	for _, w := range probe.Dictionary()[:60] {
		html, _ := site.Query(w)
		tree := htmlx.Parse(html)
		if tree.FindTag("body") == nil {
			t.Fatalf("page for %q has no body:\n%s", w, html[:120])
		}
		if !tree.HasText() {
			t.Fatalf("page for %q has no content", w)
		}
	}
}

func TestStructuralJitterPresent(t *testing.T) {
	// Across many queries, some pages must carry the optional promo line
	// and others must not — the positional jitter Figure 8's P metric
	// depends on.
	site := NewSite(SiteConfig{ID: 0, Seed: 42})
	with, without := 0, 0
	for _, w := range probe.Dictionary()[:100] {
		html, _ := site.Query(w)
		if strings.Contains(html, `class="promo"`) {
			with++
		} else {
			without++
		}
	}
	if with == 0 || without == 0 {
		t.Errorf("promo jitter degenerate: with=%d without=%d", with, without)
	}
}

func TestAdRotatesWithQuery(t *testing.T) {
	site := NewSite(SiteConfig{ID: 0, Seed: 42, DisableErrors: true})
	ads := make(map[string]bool)
	for _, w := range probe.Dictionary()[:60] {
		html, _ := site.Query(w)
		if i := strings.Index(html, `class="ad"`); i >= 0 {
			end := strings.Index(html[i:], "</div>")
			ads[html[i:i+end]] = true
		}
	}
	if len(ads) < 2 {
		t.Errorf("advertisement region static across queries (%d variants)", len(ads))
	}
}

func TestAsProbeSites(t *testing.T) {
	sites := NewSites(3, 1)
	ps := AsProbeSites(sites)
	if len(ps) != 3 || ps[1].ID() != 1 {
		t.Errorf("AsProbeSites broken")
	}
}

func TestLabeler(t *testing.T) {
	site := NewSite(SiteConfig{ID: 0, Seed: 42})
	labeler := Labeler()
	for _, w := range probe.Dictionary()[:50] {
		html, _ := site.Query(w)
		if got := labeler(site, w, html); got != site.ClassFor(w) {
			t.Errorf("labeler disagrees with ClassFor on %q", w)
		}
	}
}
