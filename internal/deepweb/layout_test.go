package deepweb

import (
	"math/rand"
	"strings"
	"testing"

	"thor/internal/htmlx"
)

func TestRandomLayoutDeterministic(t *testing.T) {
	a := randomLayout(rand.New(rand.NewSource(3)))
	b := randomLayout(rand.New(rand.NewSource(3)))
	if a != b {
		t.Errorf("layouts differ for same seed: %+v vs %+v", a, b)
	}
}

func TestNewChromeContents(t *testing.T) {
	c := newChrome("Test Store", rand.New(rand.NewSource(1)))
	if c.title != "Test Store" {
		t.Errorf("title = %q", c.title)
	}
	if len(c.navLinks) < 4 || len(c.navLinks) > 7 {
		t.Errorf("nav links = %d", len(c.navLinks))
	}
	if len(c.boiler) < 2 {
		t.Errorf("boilerplate paragraphs = %d", len(c.boiler))
	}
	if len(c.ads) != 8 {
		t.Errorf("ad inventory = %d", len(c.ads))
	}
	for _, ad := range c.ads {
		if !strings.HasPrefix(ad, "Sponsored:") {
			t.Errorf("ad %q lacks marker", ad)
		}
	}
	if !strings.Contains(c.footer, "Test Store") {
		t.Errorf("footer lacks site name: %q", c.footer)
	}
}

func pageWith(layout Layout, query string) string {
	pb := &pageBuilder{
		layout: layout,
		chrome: newChrome("L Site", rand.New(rand.NewSource(2))),
	}
	pb.sideAd = pb.adRegion(query)
	return pb.page(query, func(b *strings.Builder) {
		b.WriteString("<p>body content</p>")
	})
}

func TestPageNavStyles(t *testing.T) {
	asTable := pageWith(Layout{NavAsTable: true, HeaderTag: "h1"}, "q")
	if !strings.Contains(asTable, `<table class="nav">`) {
		t.Error("table nav missing")
	}
	asList := pageWith(Layout{NavAsTable: false, HeaderTag: "h1"}, "q")
	if !strings.Contains(asList, `<ul class="nav">`) {
		t.Error("list nav missing")
	}
}

func TestPageAdPositions(t *testing.T) {
	side := pageWith(Layout{AdPos: AdSide, HeaderTag: "h2"}, "q")
	if !strings.Contains(side, `<td valign="top">`) {
		t.Error("side ad cell missing")
	}
	if !strings.Contains(side, `class="ad"`) {
		t.Error("ad region missing from side layout")
	}
}

func TestPageSearchFormEchoesQuery(t *testing.T) {
	html := pageWith(Layout{HeaderTag: "h1"}, "zebra")
	if !strings.Contains(html, `value="zebra"`) {
		t.Error("search form does not echo the query")
	}
	tree := htmlx.Parse(html)
	if tree.FindTag("form") == nil || tree.FindTag("select") == nil {
		t.Error("search form structure incomplete")
	}
}

func TestPageHeaderTagHonored(t *testing.T) {
	for _, h := range []string{"h1", "h2", "h3"} {
		html := pageWith(Layout{HeaderTag: h}, "q")
		if !strings.Contains(html, "<"+h+">") {
			t.Errorf("header tag %s missing", h)
		}
	}
}

func TestPageStructureParses(t *testing.T) {
	// Every layout combination must yield a parseable page with the
	// standard chrome present.
	for style := ResultStyle(0); style < numResultStyles; style++ {
		for ad := AdPosition(0); ad < numAdPositions; ad++ {
			layout := Layout{ResultStyle: style, AdPos: ad, HeaderTag: "h2", WrapDepth: 1}
			tree := htmlx.Parse(pageWith(layout, "query"))
			if tree.FindTag("form") == nil {
				t.Fatalf("style=%d ad=%d: no search form", style, ad)
			}
			if tree.FindTag("title") == nil {
				t.Fatalf("style=%d ad=%d: no title", style, ad)
			}
			if !tree.HasText() {
				t.Fatalf("style=%d ad=%d: no text", style, ad)
			}
		}
	}
}

func TestAdRegionDeterministicPerQuery(t *testing.T) {
	pb := &pageBuilder{
		layout: Layout{},
		chrome: newChrome("X", rand.New(rand.NewSource(5))),
	}
	if pb.adRegion("alpha") != pb.adRegion("alpha") {
		t.Error("ad region not deterministic per query")
	}
	distinct := map[string]bool{}
	for _, q := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"} {
		distinct[pb.adRegion(q)] = true
	}
	if len(distinct) < 2 {
		t.Error("ad region never rotates")
	}
}

func TestAdRegionFontDecoration(t *testing.T) {
	pb := &pageBuilder{
		layout: Layout{UseFontTags: true},
		chrome: newChrome("X", rand.New(rand.NewSource(5))),
	}
	if !strings.Contains(pb.adRegion("q"), "<font") {
		t.Error("font decoration missing")
	}
}

func TestSlug(t *testing.T) {
	if got := slug("New Arrivals"); got != "new-arrivals" {
		t.Errorf("slug = %q", got)
	}
}

func TestHashStringStable(t *testing.T) {
	if hashString("abc") != hashString("abc") {
		t.Error("hash not stable")
	}
	if hashString("abc") == hashString("abd") {
		t.Error("suspiciously colliding hash")
	}
}
