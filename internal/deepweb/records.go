// Package deepweb simulates the Deep Web substrate of the paper's
// evaluation: autonomous database-backed web sites that answer single
// keyword queries with dynamically generated pages. The paper probed 50
// live sites (found via crawling and Google) to collect 5,500 pages; those
// sites are long gone and were never redistributable, so this package
// builds the closest synthetic equivalent: 50 generated site profiles with
// distinct templates, record schemas, vocabularies, navigation chrome,
// boilerplate, and dynamic advertisement regions, each backed by an
// in-memory record database with an inverted keyword index.
//
// The substitution preserves everything THOR's algorithms observe: per-site
// page templates, structurally distinct answer classes (multi-match,
// single-match, no-match, error), static cross-page regions (navigation,
// boilerplate) versus query-varying regions (answers) versus dynamic
// non-query regions (advertisements), and the probe→class mapping of
// dictionary versus nonsense keywords. Ground truth is emitted as marker
// attributes that the extraction algorithms never read.
package deepweb

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"thor/internal/probe"
)

// FieldKind describes how a record field's value is generated and
// displayed.
type FieldKind int

const (
	// KindWords is free text of a few vocabulary words.
	KindWords FieldKind = iota
	// KindName is a capitalized proper-name-like phrase.
	KindName
	// KindPrice is a dollar amount.
	KindPrice
	// KindYear is a four-digit year.
	KindYear
	// KindLong is a longer free-text description.
	KindLong
)

// Field is one column of a site's record schema.
type Field struct {
	Name string
	Kind FieldKind
}

// Schema is the record layout of a site's backing database.
type Schema struct {
	Name   string // e.g. "books"
	Fields []Field
}

// schemaFamilies are the domain archetypes the 50 simulated sites draw
// from, mirroring the diversity of the paper's crawled search forms
// (e-commerce, music, news, jobs, reference).
var schemaFamilies = []Schema{
	{Name: "books", Fields: []Field{
		{"title", KindWords}, {"author", KindName}, {"publisher", KindName},
		{"year", KindYear}, {"price", KindPrice},
	}},
	{Name: "music", Fields: []Field{
		{"artist", KindName}, {"album", KindWords}, {"genre", KindWords},
		{"year", KindYear}, {"label", KindName},
	}},
	{Name: "products", Fields: []Field{
		{"name", KindWords}, {"brand", KindName}, {"category", KindWords},
		{"price", KindPrice}, {"description", KindLong},
	}},
	{Name: "articles", Fields: []Field{
		{"headline", KindWords}, {"byline", KindName}, {"section", KindWords},
		{"year", KindYear}, {"summary", KindLong},
	}},
	{Name: "jobs", Fields: []Field{
		{"position", KindWords}, {"company", KindName}, {"location", KindName},
		{"salary", KindPrice}, {"details", KindLong},
	}},
}

// Record is a single database row: field name → rendered value.
type Record map[string]string

// Database is a site's backing store: records plus an inverted keyword
// index over the tokens of every field value.
type Database struct {
	Schema  Schema
	Records []Record
	index   map[string][]int
}

// vocabulary partitions a site's indexed word stock by how often each word
// occurs, so dictionary probes produce the full spread of answer classes:
// common words hit many records (multi-match), rare words hit exactly one
// (single-match), and words outside the site vocabulary hit none
// (no-match).
type vocabulary struct {
	common []string // appear throughout the record text
	mid    []string // appear in a handful of records
	rare   []string // injected into exactly one record each
}

func newVocabulary(rng *rand.Rand) vocabulary {
	dict := probe.Dictionary()
	rng.Shuffle(len(dict), func(i, j int) { dict[i], dict[j] = dict[j], dict[i] })
	return vocabulary{
		common: dict[:150],
		mid:    dict[150:550],
		rare:   dict[550:640],
	}
}

// textWords draws n words for free-text fields: mostly common, sometimes
// mid-tier.
func (v vocabulary) textWords(rng *rand.Rand, n int) []string {
	out := make([]string, n)
	for i := range out {
		if rng.Intn(4) == 0 {
			out[i] = v.mid[rng.Intn(len(v.mid))]
		} else {
			out[i] = v.common[rng.Intn(len(v.common))]
		}
	}
	return out
}

// NewDatabase generates a deterministic record database for a site.
func NewDatabase(schema Schema, numRecords int, rng *rand.Rand) *Database {
	vocab := newVocabulary(rng)
	db := &Database{Schema: schema, index: make(map[string][]int)}
	for i := 0; i < numRecords; i++ {
		rec := make(Record, len(schema.Fields))
		for _, f := range schema.Fields {
			rec[f.Name] = genValue(f.Kind, vocab, rng)
		}
		db.Records = append(db.Records, rec)
	}
	// Inject each rare word into exactly one record so single-match pages
	// exist. The word is appended to the first free-text field.
	textField := schema.Fields[0].Name
	for _, w := range vocab.rare {
		i := rng.Intn(len(db.Records))
		db.Records[i][textField] = db.Records[i][textField] + " " + w
	}
	db.buildIndex()
	return db
}

func genValue(kind FieldKind, vocab vocabulary, rng *rand.Rand) string {
	switch kind {
	case KindWords:
		return strings.Join(vocab.textWords(rng, 2+rng.Intn(3)), " ")
	case KindName:
		words := vocab.textWords(rng, 2)
		for i, w := range words {
			words[i] = strings.ToUpper(w[:1]) + w[1:]
		}
		return strings.Join(words, " ")
	case KindPrice:
		return fmt.Sprintf("$%d.%02d", 5+rng.Intn(495), rng.Intn(100))
	case KindYear:
		return fmt.Sprintf("%d", 1950+rng.Intn(55))
	case KindLong:
		return strings.Join(vocab.textWords(rng, 8+rng.Intn(10)), " ")
	default:
		return ""
	}
}

func (db *Database) buildIndex() {
	for i, rec := range db.Records {
		seen := make(map[string]bool)
		fields := make([]string, 0, len(rec))
		for f := range rec {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		for _, f := range fields {
			for _, tok := range strings.Fields(strings.ToLower(rec[f])) {
				tok = strings.Trim(tok, "$.,")
				if tok == "" || seen[tok] {
					continue
				}
				seen[tok] = true
				db.index[tok] = append(db.index[tok], i)
			}
		}
	}
}

// Search returns the indexes of records containing keyword.
func (db *Database) Search(keyword string) []int {
	return db.index[strings.ToLower(strings.TrimSpace(keyword))]
}

// NumRecords returns the number of records in the database.
func (db *Database) NumRecords() int { return len(db.Records) }

// DistinctTokens returns the size of the inverted index's vocabulary.
func (db *Database) DistinctTokens() int { return len(db.index) }
