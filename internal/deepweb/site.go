package deepweb

import (
	"fmt"
	"math/rand"
	"strings"

	"thor/internal/corpus"
	"thor/internal/probe"
)

// Site is one simulated deep-web source: a record database behind a
// single-keyword search interface that renders template-driven dynamic
// pages. It implements probe.Site.
type Site struct {
	id      int
	name    string
	host    string
	db      *Database
	builder pageBuilder

	// maxResults caps the rows shown on a multi-match page, like real
	// search front-ends paginate.
	maxResults int
	// errEvery injects a deterministic exception page for roughly one in
	// errEvery queries (0 disables), modeling the error/exception class of
	// answer pages. The decision is a pure function of the keyword so
	// ClassFor agrees with Query.
	errEvery uint32
	// multiRegion adds the related-items second QA-Pagelet to multi-match
	// pages.
	multiRegion bool
}

// SiteConfig controls site generation.
type SiteConfig struct {
	ID         int
	Seed       int64
	NumRecords int    // default 300
	MaxResults int    // default 10
	ErrEvery   uint32 // inject an error page for ~1/ErrEvery queries; default 23 (≈4%)
	// DisableErrors turns off error-page injection entirely.
	DisableErrors bool
	// MultiRegion adds a second primary content region ("related items")
	// to multi-match pages — the multiple-QA-Pagelet site shape Section 1
	// mentions. Extracting it requires Config.NumPagelets ≥ 2.
	MultiRegion bool
}

// NewSite generates a deterministic simulated deep-web site.
func NewSite(cfg SiteConfig) *Site {
	if cfg.NumRecords <= 0 {
		cfg.NumRecords = 300
	}
	if cfg.MaxResults <= 0 {
		cfg.MaxResults = 10
	}
	if cfg.ErrEvery == 0 {
		cfg.ErrEvery = 23
	}
	if cfg.DisableErrors {
		cfg.ErrEvery = 0
	}
	rng := rand.New(rand.NewSource(cfg.Seed + int64(cfg.ID)*1_000_003))
	family := schemaFamilies[cfg.ID%len(schemaFamilies)]
	name := fmt.Sprintf("%s%d.example.com", family.Name, cfg.ID)
	s := &Site{
		id:          cfg.ID,
		name:        strings.ToUpper(family.Name[:1]) + family.Name[1:] + fmt.Sprintf(" Source %d", cfg.ID),
		host:        name,
		db:          NewDatabase(family, cfg.NumRecords, rng),
		maxResults:  cfg.MaxResults,
		errEvery:    cfg.ErrEvery,
		multiRegion: cfg.MultiRegion,
	}
	s.builder = pageBuilder{
		layout: randomLayout(rng),
		chrome: newChrome(s.name, rng),
	}
	return s
}

// NewSites generates n simulated sites with distinct schemas and layouts.
func NewSites(n int, seed int64) []*Site {
	sites := make([]*Site, n)
	for i := range sites {
		sites[i] = NewSite(SiteConfig{ID: i, Seed: seed})
	}
	return sites
}

// AsProbeSites adapts a site slice to the prober's interface.
func AsProbeSites(sites []*Site) []probe.Site {
	out := make([]probe.Site, len(sites))
	for i, s := range sites {
		out[i] = s
	}
	return out
}

// ID implements probe.Site.
func (s *Site) ID() int { return s.id }

// Name implements probe.Site.
func (s *Site) Name() string { return s.name }

// Database exposes the backing store (used by tests and examples).
func (s *Site) Database() *Database { return s.db }

// Layout exposes the site's presentation template.
func (s *Site) Layout() Layout { return s.builder.layout }

// ClassFor returns the answer-page class the site will serve for keyword.
// It is a pure function of the keyword, so it doubles as the exact labeler
// replacing the paper's hand labeling.
func (s *Site) ClassFor(keyword string) corpus.Class {
	if s.errEvery > 0 && hashString(s.host+"|"+keyword)%s.errEvery == 0 {
		return corpus.ErrorPage
	}
	switch n := len(s.db.Search(keyword)); {
	case n == 0:
		return corpus.NoMatch
	case n == 1:
		return corpus.SingleMatch
	default:
		return corpus.MultiMatch
	}
}

// Labeler returns the exact page labeler for simulated sites, suitable for
// probe.Prober.
func Labeler() func(site probe.Site, keyword, html string) corpus.Class {
	return func(site probe.Site, keyword, _ string) corpus.Class {
		return site.(*Site).ClassFor(keyword)
	}
}

// Query implements probe.Site: it runs the keyword search and renders the
// first dynamically generated response page.
func (s *Site) Query(keyword string) (html, url string) {
	return s.QueryPage(keyword, 1)
}

// QueryPage serves result page number page (1-based) for the keyword,
// implementing probe.PagedSite. Multi-match answers paginate at
// MaxResults records per page like real search front-ends; page numbers
// beyond the last page clamp to the last page. Non-multi-match answers
// have a single page.
func (s *Site) QueryPage(keyword string, page int) (html, url string) {
	if page < 1 {
		page = 1
	}
	url = fmt.Sprintf("http://%s/search?q=%s", s.host, keyword)
	if page > 1 {
		url += fmt.Sprintf("&page=%d", page)
	}
	switch s.ClassFor(keyword) {
	case corpus.ErrorPage:
		return s.renderError(keyword), url
	case corpus.NoMatch:
		return s.renderNoMatch(keyword), url
	case corpus.SingleMatch:
		ids := s.db.Search(keyword)
		return s.renderSingleMatch(keyword, s.db.Records[ids[0]]), url
	default:
		ids := s.db.Search(keyword)
		total := s.pageCount(len(ids))
		if page > total {
			page = total
		}
		lo := (page - 1) * s.maxResults
		hi := lo + s.maxResults
		if hi > len(ids) {
			hi = len(ids)
		}
		recs := make([]Record, 0, hi-lo)
		for _, id := range ids[lo:hi] {
			recs = append(recs, s.db.Records[id])
		}
		return s.renderMultiMatch(keyword, recs, page, total), url
	}
}

// NumPages implements probe.PagedSite: the number of result pages the
// keyword's answer spans.
func (s *Site) NumPages(keyword string) int {
	if s.ClassFor(keyword) != corpus.MultiMatch {
		return 1
	}
	return s.pageCount(len(s.db.Search(keyword)))
}

func (s *Site) pageCount(matches int) int {
	pages := (matches + s.maxResults - 1) / s.maxResults
	if pages < 1 {
		pages = 1
	}
	return pages
}

// renderMultiMatch produces the list-of-matches page. The results
// container carries the ground-truth pagelet marker and each row the
// object marker. When the answer spans several pages a pager line links
// the neighbors, as real search front-ends do.
func (s *Site) renderMultiMatch(query string, recs []Record, page, totalPages int) string {
	pb := &s.builder
	pb.sideAd = pb.adRegion(query)
	return pb.page(query, func(b *strings.Builder) {
		fmt.Fprintf(b, "<h4>Search results for %s</h4>", query)
		fmt.Fprintf(b, "<p>Showing %d matching items (page %d of %d).</p>",
			len(recs), page, totalPages)
		if pb.layout.AdPos == AdTop {
			b.WriteString(pb.adRegion(query))
		}
		s.openWrappers(b)
		s.renderResults(b, recs)
		s.closeWrappers(b)
		if totalPages > 1 {
			b.WriteString(`<p class="pager">`)
			if page > 1 {
				fmt.Fprintf(b, `<a href="/search?q=%s&amp;page=%d">Previous</a> `, query, page-1)
			}
			if page < totalPages {
				fmt.Fprintf(b, `<a href="/search?q=%s&amp;page=%d">Next</a>`, query, page+1)
			}
			b.WriteString("</p>")
		}
		if s.multiRegion {
			s.renderRelated(b, query)
		}
		if pb.layout.AdPos == AdBottom {
			b.WriteString(pb.adRegion(query))
		}
	})
}

// renderRelated writes the second primary content region of multi-region
// sites: a query-dependent "related items" list, itself a QA-Pagelet.
func (s *Site) renderRelated(b *strings.Builder, query string) {
	marker := fmt.Sprintf(` %s="%s"`, corpus.TruthMarkerAttr, corpus.TruthPagelet)
	obj := fmt.Sprintf(` %s="%s"`, corpus.TruthMarkerAttr, corpus.TruthObject)
	n := len(s.db.Records)
	base := int(hashString(query + "|related"))
	fmt.Fprintf(b, `<div class="related"><h5>Related items</h5><ol%s>`, marker)
	titleField := s.db.Schema.Fields[0].Name
	for i := 0; i < 3; i++ {
		rec := s.db.Records[(base+i*7)%n]
		fmt.Fprintf(b, `<li%s><a href="/item/%s">%s</a></li>`,
			obj, slug(rec[titleField]), rec[titleField])
	}
	b.WriteString("</ol></div>")
}

func (s *Site) openWrappers(b *strings.Builder) {
	for i := 0; i < s.builder.layout.WrapDepth; i++ {
		fmt.Fprintf(b, `<div class="wrap%d">`, i)
	}
}

func (s *Site) closeWrappers(b *strings.Builder) {
	for i := 0; i < s.builder.layout.WrapDepth; i++ {
		b.WriteString("</div>")
	}
}

// renderResults writes the QA-Pagelet: the region of query matches.
func (s *Site) renderResults(b *strings.Builder, recs []Record) {
	marker := fmt.Sprintf(` %s="%s"`, corpus.TruthMarkerAttr, corpus.TruthPagelet)
	obj := fmt.Sprintf(` %s="%s"`, corpus.TruthMarkerAttr, corpus.TruthObject)
	lay := s.builder.layout
	fields := s.db.Schema.Fields
	switch lay.ResultStyle {
	case StyleTable:
		fmt.Fprintf(b, `<table class="results" border="1"%s><tr>`, marker)
		for _, f := range fields {
			fmt.Fprintf(b, "<th>%s</th>", f.Name)
		}
		b.WriteString("</tr>")
		for _, r := range recs {
			fmt.Fprintf(b, "<tr%s>", obj)
			for j, f := range fields {
				b.WriteString("<td>")
				s.renderField(b, r, f, j == 0)
				b.WriteString("</td>")
			}
			b.WriteString("</tr>")
		}
		b.WriteString("</table>")
	case StyleUL, StyleOL:
		tag := "ul"
		if lay.ResultStyle == StyleOL {
			tag = "ol"
		}
		fmt.Fprintf(b, `<%s class="results"%s>`, tag, marker)
		for _, r := range recs {
			fmt.Fprintf(b, "<li%s>", obj)
			for j, f := range fields {
				if j > 0 {
					b.WriteString(" <span>|</span> ")
				}
				s.renderField(b, r, f, j == 0)
			}
			b.WriteString("</li>")
		}
		fmt.Fprintf(b, "</%s>", tag)
	case StyleDivList:
		fmt.Fprintf(b, `<div class="results"%s>`, marker)
		for _, r := range recs {
			fmt.Fprintf(b, `<div class="result"%s>`, obj)
			for j, f := range fields {
				b.WriteString("<p>")
				s.renderField(b, r, f, j == 0)
				b.WriteString("</p>")
			}
			b.WriteString("</div>")
		}
		b.WriteString("</div>")
	case StyleDL:
		// One definition list per record so each QA-Object is a single
		// subtree (a dt/dd pair split across siblings would not be).
		fmt.Fprintf(b, `<div class="results"%s>`, marker)
		for _, r := range recs {
			fmt.Fprintf(b, "<dl%s><dt>", obj)
			s.renderField(b, r, fields[0], true)
			b.WriteString("</dt><dd>")
			for j, f := range fields[1:] {
				if j > 0 {
					b.WriteString("; ")
				}
				s.renderField(b, r, f, false)
			}
			b.WriteString("</dd></dl>")
		}
		b.WriteString("</div>")
	}
}

// renderField writes one field value with the site's decoration habits.
func (s *Site) renderField(b *strings.Builder, r Record, f Field, first bool) {
	lay := s.builder.layout
	val := r[f.Name]
	if lay.BoldLabels && !first {
		fmt.Fprintf(b, "<b>%s:</b> ", f.Name)
	}
	switch {
	case first && lay.LinkTitles:
		fmt.Fprintf(b, `<a href="/item/%s">%s</a>`, slug(val), val)
	case lay.UseFontTags && f.Kind == KindPrice:
		fmt.Fprintf(b, `<font color="green">%s</font>`, val)
	case f.Kind == KindPrice:
		fmt.Fprintf(b, "<strong>%s</strong>", val)
	default:
		b.WriteString(val)
	}
}

// renderSingleMatch produces the detail page for exactly one match; the
// detail region is the page's QA-Pagelet and each field row a QA-Object.
func (s *Site) renderSingleMatch(query string, rec Record) string {
	pb := &s.builder
	pb.sideAd = pb.adRegion(query)
	marker := fmt.Sprintf(` %s="%s"`, corpus.TruthMarkerAttr, corpus.TruthPagelet)
	obj := fmt.Sprintf(` %s="%s"`, corpus.TruthMarkerAttr, corpus.TruthObject)
	fields := s.db.Schema.Fields
	return pb.page(query, func(b *strings.Builder) {
		fmt.Fprintf(b, "<h4>Details for your search: %s</h4>", query)
		if pb.layout.AdPos == AdTop {
			b.WriteString(pb.adRegion(query))
		}
		s.openWrappers(b)
		if pb.layout.DetailAsDL {
			// The value cells carry the object markers: they are the
			// query-dependent units phase two recommends, while the dt
			// labels are static furniture.
			fmt.Fprintf(b, `<dl class="detail"%s>`, marker)
			for _, f := range fields {
				fmt.Fprintf(b, "<dt>%s</dt><dd%s>", f.Name, obj)
				s.renderField(b, rec, f, false)
				b.WriteString("</dd>")
			}
			b.WriteString("</dl>")
		} else {
			fmt.Fprintf(b, `<table class="detail" border="0"%s>`, marker)
			for _, f := range fields {
				fmt.Fprintf(b, "<tr%s><td><b>%s</b></td><td>", obj, f.Name)
				s.renderField(b, rec, f, false)
				b.WriteString("</td></tr>")
			}
			b.WriteString("</table>")
		}
		s.closeWrappers(b)
		if pb.layout.AdPos == AdBottom {
			b.WriteString(pb.adRegion(query))
		}
	})
}

// renderNoMatch produces the "no matches" page: chrome plus an apology
// that echoes the query but contains no QA-Pagelet.
func (s *Site) renderNoMatch(query string) string {
	pb := &s.builder
	pb.sideAd = pb.adRegion(query)
	return pb.page(query, func(b *strings.Builder) {
		fmt.Fprintf(b, `<div class="nomatch"><h4>No matches</h4>`)
		fmt.Fprintf(b, "<p>Your search for <b>%s</b> returned no results.</p>", query)
		b.WriteString("<p>Suggestions: check your spelling, try fewer keywords, or browse the categories above.</p></div>")
	})
}

// renderError produces the exception page class: a terse server-error
// response that shares almost nothing with the site's answer templates.
func (s *Site) renderError(query string) string {
	return fmt.Sprintf(`<html><head><title>500 Internal Server Error</title></head>`+
		`<body><h1>Internal Server Error</h1>`+
		`<p>The server encountered an unexpected condition while processing query %q.</p>`+
		`<p>Error code: %d. Please try again later.</p>`+
		`<hr><address>%s</address></body></html>`,
		query, 500+hashString(query)%17, s.host)
}
