package probe

import (
	"strings"
	"testing"

	"thor/internal/corpus"
)

// vocabSite is a fake site whose database "indexes" a fixed word set;
// answer pages echo database vocabulary so the adaptive round has
// something to mine.
type vocabSite struct {
	indexed map[string]bool
	queries []string
}

func newVocabSite(words ...string) *vocabSite {
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[w] = true
	}
	return &vocabSite{indexed: m}
}

func (v *vocabSite) ID() int      { return 1 }
func (v *vocabSite) Name() string { return "vocab" }
func (v *vocabSite) Query(kw string) (string, string) {
	v.queries = append(v.queries, kw)
	url := "http://vocab/search?q=" + kw
	if !v.indexed[kw] {
		return `<html><body><p>no matches</p></body></html>`, url
	}
	// An answer page whose result list leaks more database vocabulary.
	var b strings.Builder
	b.WriteString(`<html><body><ul>`)
	for w := range v.indexed {
		b.WriteString("<li>entry " + w + " zebrafish quagmire</li>")
	}
	b.WriteString(`</ul></body></html>`)
	return b.String(), url
}

func vocabLabeler(site Site, kw, _ string) corpus.Class {
	if site.(*vocabSite).indexed[kw] {
		return corpus.MultiMatch
	}
	return corpus.NoMatch
}

func TestAdaptiveProberMinesAnswerVocabulary(t *testing.T) {
	site := newVocabSite("apple", "zebrafish", "quagmire")
	ap := &AdaptiveProber{
		Plan: Plan{
			DictionaryWords: []string{"apple", "book"},
			NonsenseWords:   []string{"xqzzz"},
		},
		Labeler:        vocabLabeler,
		FeedbackProbes: 5,
	}
	col := ap.ProbeSite(site)
	// Initial 3 probes plus feedback probes.
	if len(col.Pages) <= 3 {
		t.Fatalf("no feedback probes issued: %d pages", len(col.Pages))
	}
	// The mined terms must include database vocabulary absent from the
	// initial plan ("zebrafish" or "quagmire"), and probing them must have
	// produced answer pages.
	minedHit := false
	for _, p := range col.Pages[3:] {
		if p.Query == "zebrafish" || p.Query == "quagmire" {
			if p.Class != corpus.MultiMatch {
				t.Errorf("mined probe %q class = %v", p.Query, p.Class)
			}
			minedHit = true
		}
		if p.Query == "apple" {
			t.Errorf("already-probed word re-probed")
		}
	}
	if !minedHit {
		t.Errorf("feedback round never probed mined vocabulary; queries: %v", site.queries)
	}
}

func TestAdaptiveProberNoAnswersNoFeedback(t *testing.T) {
	site := newVocabSite() // nothing indexed: all probes miss
	ap := &AdaptiveProber{
		Plan:    Plan{DictionaryWords: []string{"apple", "book"}},
		Labeler: vocabLabeler,
	}
	col := ap.ProbeSite(site)
	if len(col.Pages) != 2 {
		t.Errorf("pages = %d; feedback should mine nothing from no-match pages", len(col.Pages))
	}
}

func TestAdaptiveProberRespectsFeedbackCap(t *testing.T) {
	words := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}
	site := newVocabSite(words...)
	ap := &AdaptiveProber{
		Plan:           Plan{DictionaryWords: []string{"alpha"}},
		Labeler:        vocabLabeler,
		FeedbackProbes: 3,
	}
	col := ap.ProbeSite(site)
	if got := len(col.Pages); got != 1+3 {
		t.Errorf("pages = %d, want 4 (1 initial + 3 feedback)", got)
	}
}

func TestMineTermsSkipsShortAndNonAlpha(t *testing.T) {
	site := newVocabSite("apple")
	ap := &AdaptiveProber{
		Plan:       Plan{DictionaryWords: []string{"apple"}},
		Labeler:    vocabLabeler,
		MinTermLen: 6,
	}
	col := ap.ProbeSite(site)
	for _, p := range col.Pages[1:] {
		if len(p.Query) < 6 {
			t.Errorf("short term %q probed despite MinTermLen", p.Query)
		}
	}
}
