package probe

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("kw")
		page := r.URL.Query().Get("p")
		if page == "" {
			page = "1"
		}
		fmt.Fprintf(w, "<html><body><p>results for %s page %s</p></body></html>", q, page)
	}))
}

func TestHTTPSiteQuery(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	site := &HTTPSite{
		SiteID:     3,
		SearchURL:  srv.URL + "/search",
		QueryParam: "kw",
	}
	html, pageURL := site.Query("guitar")
	if !strings.Contains(html, "results for guitar page 1") {
		t.Errorf("body = %q", html)
	}
	if !strings.Contains(pageURL, "kw=guitar") {
		t.Errorf("url = %q", pageURL)
	}
}

func TestHTTPSitePagination(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	site := &HTTPSite{
		SearchURL:    srv.URL + "/search",
		QueryParam:   "kw",
		PageParam:    "p",
		MaxPagesHint: 3,
	}
	if site.NumPages("x") != 3 {
		t.Errorf("NumPages = %d", site.NumPages("x"))
	}
	html, pageURL := site.QueryPage("drum", 2)
	if !strings.Contains(html, "page 2") {
		t.Errorf("body = %q", html)
	}
	if !strings.Contains(pageURL, "p=2") {
		t.Errorf("url = %q", pageURL)
	}
	// Page 1 omits the parameter.
	_, first := site.QueryPage("drum", 1)
	if strings.Contains(first, "p=1") {
		t.Errorf("page 1 url carries page param: %q", first)
	}
}

func TestHTTPSiteNoPaginationByDefault(t *testing.T) {
	site := &HTTPSite{SearchURL: "http://x/search"}
	if site.NumPages("k") != 1 {
		t.Errorf("NumPages = %d without PageParam", site.NumPages("k"))
	}
}

func TestHTTPSiteName(t *testing.T) {
	site := &HTTPSite{SearchURL: "http://books.example.com/search"}
	if site.Name() != "books.example.com" {
		t.Errorf("Name = %q", site.Name())
	}
	site.SiteName = "Books"
	if site.Name() != "Books" {
		t.Errorf("Name = %q", site.Name())
	}
}

func TestHTTPSiteExistingQueryString(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	site := &HTTPSite{
		SearchURL:  srv.URL + "/search?lang=en",
		QueryParam: "kw",
	}
	html, pageURL := site.Query("cat")
	if !strings.Contains(pageURL, "lang=en&") {
		t.Errorf("existing query string clobbered: %q", pageURL)
	}
	if !strings.Contains(html, "results for cat") {
		t.Errorf("body = %q", html)
	}
}

func TestHTTPSiteDownServer(t *testing.T) {
	srv := echoServer(t)
	srv.Close() // immediately unreachable
	site := &HTTPSite{SearchURL: srv.URL + "/search"}
	html, pageURL := site.Query("x")
	if html != "" {
		t.Errorf("unreachable server returned %q", html)
	}
	if pageURL == "" {
		t.Error("url should still be reported")
	}
}

func TestProberOverHTTPSite(t *testing.T) {
	srv := echoServer(t)
	defer srv.Close()
	site := &HTTPSite{SearchURL: srv.URL + "/search", QueryParam: "kw"}
	pr := &Prober{Plan: Plan{DictionaryWords: []string{"a", "b"}}}
	col := pr.ProbeSite(site)
	if len(col.Pages) != 2 {
		t.Fatalf("pages = %d", len(col.Pages))
	}
	for _, p := range col.Pages {
		if !strings.Contains(p.HTML, "results for "+p.Query) {
			t.Errorf("page %q body mismatch", p.Query)
		}
	}
}
