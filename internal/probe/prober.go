// Package probe implements THOR's first stage, sample page collection by
// query probing (Section 2, Stage 1): a deep web site is repeatedly queried
// with single-word probes taken from two candidate-term sets — random words
// from a dictionary and nonsense words unlikely to be indexed in any deep
// web database — to collect a diverse set of sample answer pages covering
// all structurally distinct answer classes.
package probe

import (
	"fmt"
	"math/rand"

	"thor/internal/corpus"
)

// Site is the query interface a deep web source exposes to the prober: a
// single-keyword search returning the response page HTML and the URL the
// query resolved to.
type Site interface {
	// ID returns a stable identifier for the site.
	ID() int
	// Name returns a human-readable site name.
	Name() string
	// Query submits a single-keyword query and returns the raw HTML of the
	// dynamically generated response page together with its URL.
	Query(keyword string) (html, url string)
}

// PagedSite is optionally implemented by sources whose multi-match answers
// paginate. A prober with MaxPages > 1 follows the pagination to sample
// beyond the first result page.
type PagedSite interface {
	Site
	// QueryPage returns result page number page (1-based) for the keyword.
	QueryPage(keyword string, page int) (html, url string)
	// NumPages reports how many result pages the keyword's answer spans.
	NumPages(keyword string) int
}

// Plan is a probing plan: the keyword sequence submitted to a site.
type Plan struct {
	DictionaryWords []string
	NonsenseWords   []string
}

// Keywords returns the full probe sequence: dictionary words followed by
// nonsense words.
func (p Plan) Keywords() []string {
	out := make([]string, 0, len(p.DictionaryWords)+len(p.NonsenseWords))
	out = append(out, p.DictionaryWords...)
	out = append(out, p.NonsenseWords...)
	return out
}

// NewPlan builds the paper's probing plan: dictWords random words sampled
// without replacement from the embedded dictionary plus nonsense nonsense
// words (Section 4 uses 100 and 10). Sampling is deterministic in seed.
func NewPlan(dictWords, nonsense int, seed int64) Plan {
	rng := rand.New(rand.NewSource(seed))
	if dictWords > len(dictionary) {
		dictWords = len(dictionary)
	}
	perm := rng.Perm(len(dictionary))
	words := make([]string, dictWords)
	for i := 0; i < dictWords; i++ {
		words[i] = dictionary[perm[i]]
	}
	return Plan{
		DictionaryWords: words,
		NonsenseWords:   NonsenseWords(nonsense, rng),
	}
}

// NonsenseWords generates n pronounceable-but-unindexed probe words. Each
// is prefixed with "xq" — a digraph absent from English — and verified not
// to collide with the dictionary, so they are guaranteed to generate
// "no matches" responses from any site indexing natural text.
func NonsenseWords(n int, rng *rand.Rand) []string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	out := make([]string, 0, n)
	for len(out) < n {
		b := []byte{'x', 'q'}
		for i := 0; i < 5; i++ {
			b = append(b, letters[rng.Intn(len(letters))])
		}
		w := string(b)
		if !InDictionary(w) {
			out = append(out, w)
		}
	}
	return out
}

// Prober collects sample pages from deep web sites.
type Prober struct {
	Plan Plan
	// Labeler assigns a class to each collected page; the simulated deep
	// web supplies an exact labeler. When nil, pages get class NoMatch —
	// callers that only need the HTML may ignore labels.
	Labeler func(site Site, keyword, html string) corpus.Class
	// MaxPages, when greater than 1 and the site implements PagedSite,
	// follows multi-page answers up to this many result pages per
	// keyword. The paper's prototype samples only first pages (the
	// default here); deeper sampling yields more structurally identical
	// answer pages per probe.
	MaxPages int
}

// ProbeSite submits every keyword of the plan to the site and returns the
// resulting collection of sampled pages.
func (pr *Prober) ProbeSite(site Site) *corpus.Collection {
	col := &corpus.Collection{SiteID: site.ID(), Name: site.Name()}
	paged, isPaged := site.(PagedSite)
	for _, kw := range pr.Plan.Keywords() {
		html, url := site.Query(kw)
		col.Pages = append(col.Pages, pr.makePage(site, kw, html, url))
		if !isPaged || pr.MaxPages <= 1 {
			continue
		}
		last := paged.NumPages(kw)
		if last > pr.MaxPages {
			last = pr.MaxPages
		}
		for p := 2; p <= last; p++ {
			html, url := paged.QueryPage(kw, p)
			col.Pages = append(col.Pages, pr.makePage(site, kw, html, url))
		}
	}
	return col
}

func (pr *Prober) makePage(site Site, kw, html, url string) *corpus.Page {
	page := &corpus.Page{
		SiteID: site.ID(),
		URL:    url,
		Query:  kw,
		HTML:   html,
	}
	if pr.Labeler != nil {
		page.Class = pr.Labeler(site, kw, html)
	}
	return page
}

// ProbeAll probes every site and assembles a corpus.
func (pr *Prober) ProbeAll(sites []Site) *corpus.Corpus {
	c := &corpus.Corpus{}
	for _, s := range sites {
		c.Collections = append(c.Collections, pr.ProbeSite(s))
	}
	return c
}

// String summarizes the plan.
func (p Plan) String() string {
	return fmt.Sprintf("plan(%d dictionary + %d nonsense probes)",
		len(p.DictionaryWords), len(p.NonsenseWords))
}
