package probe

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"thor/internal/corpus"
)

func TestDictionary(t *testing.T) {
	d := Dictionary()
	if len(d) < 1000 {
		t.Errorf("dictionary has %d words, want ≥ 1000", len(d))
	}
	if len(d) != DictionarySize() {
		t.Errorf("DictionarySize disagrees with Dictionary()")
	}
	seen := make(map[string]bool)
	for _, w := range d {
		if w == "" || w != strings.ToLower(w) {
			t.Errorf("bad dictionary word %q", w)
		}
		if seen[w] {
			t.Errorf("duplicate dictionary word %q", w)
		}
		seen[w] = true
	}
	// Returned slice is a copy: mutating it must not corrupt the source.
	d[0] = "MUTATED"
	if Dictionary()[0] == "MUTATED" {
		t.Error("Dictionary() exposes internal slice")
	}
}

func TestInDictionary(t *testing.T) {
	if !InDictionary("apple") {
		t.Error("apple should be in the dictionary")
	}
	if InDictionary("xqzzyfoo") {
		t.Error("xqzzyfoo should not be in the dictionary")
	}
}

func TestNewPlan(t *testing.T) {
	plan := NewPlan(100, 10, 1)
	if len(plan.DictionaryWords) != 100 || len(plan.NonsenseWords) != 10 {
		t.Fatalf("plan sizes: %d dict, %d nonsense",
			len(plan.DictionaryWords), len(plan.NonsenseWords))
	}
	if got := len(plan.Keywords()); got != 110 {
		t.Errorf("Keywords = %d, want 110", got)
	}
	// Dictionary words sampled without replacement.
	seen := make(map[string]bool)
	for _, w := range plan.DictionaryWords {
		if seen[w] {
			t.Errorf("duplicate probe word %q", w)
		}
		seen[w] = true
		if !InDictionary(w) {
			t.Errorf("probe word %q not from dictionary", w)
		}
	}
}

func TestNewPlanDeterministic(t *testing.T) {
	a := NewPlan(50, 5, 7)
	b := NewPlan(50, 5, 7)
	for i := range a.DictionaryWords {
		if a.DictionaryWords[i] != b.DictionaryWords[i] {
			t.Fatal("plans with same seed differ")
		}
	}
	c := NewPlan(50, 5, 8)
	same := true
	for i := range a.DictionaryWords {
		if a.DictionaryWords[i] != c.DictionaryWords[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical plans")
	}
}

func TestNewPlanClampsToDictionary(t *testing.T) {
	plan := NewPlan(1_000_000, 0, 1)
	if len(plan.DictionaryWords) != DictionarySize() {
		t.Errorf("oversized request gave %d words", len(plan.DictionaryWords))
	}
}

func TestNonsenseWords(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	words := NonsenseWords(20, rng)
	if len(words) != 20 {
		t.Fatalf("got %d words", len(words))
	}
	for _, w := range words {
		if !strings.HasPrefix(w, "xq") {
			t.Errorf("nonsense word %q lacks xq prefix", w)
		}
		if InDictionary(w) {
			t.Errorf("nonsense word %q is a dictionary word", w)
		}
	}
}

func TestPlanString(t *testing.T) {
	plan := NewPlan(3, 2, 1)
	if got := plan.String(); !strings.Contains(got, "3 dictionary") || !strings.Contains(got, "2 nonsense") {
		t.Errorf("String = %q", got)
	}
}

// fakeSite is a minimal probe.Site for prober tests.
type fakeSite struct {
	id      int
	queries []string
}

func (f *fakeSite) ID() int      { return f.id }
func (f *fakeSite) Name() string { return fmt.Sprintf("fake-%d", f.id) }
func (f *fakeSite) Query(kw string) (string, string) {
	f.queries = append(f.queries, kw)
	return "<html><body><p>" + kw + "</p></body></html>",
		"http://fake/search?q=" + kw
}

func TestProbeSite(t *testing.T) {
	site := &fakeSite{id: 9}
	pr := &Prober{
		Plan: NewPlan(5, 2, 1),
		Labeler: func(_ Site, kw, _ string) corpus.Class {
			if strings.HasPrefix(kw, "xq") {
				return corpus.NoMatch
			}
			return corpus.MultiMatch
		},
	}
	col := pr.ProbeSite(site)
	if col.SiteID != 9 || col.Name != "fake-9" {
		t.Errorf("collection identity: %d %q", col.SiteID, col.Name)
	}
	if len(col.Pages) != 7 {
		t.Fatalf("pages = %d, want 7", len(col.Pages))
	}
	if len(site.queries) != 7 {
		t.Errorf("site received %d queries", len(site.queries))
	}
	dist := col.ClassDistribution()
	if dist[corpus.MultiMatch] != 5 || dist[corpus.NoMatch] != 2 {
		t.Errorf("label distribution = %v", dist)
	}
	for _, p := range col.Pages {
		if !strings.Contains(p.HTML, p.Query) {
			t.Errorf("page HTML missing query %q", p.Query)
		}
		if !strings.HasPrefix(p.URL, "http://fake/search?q=") {
			t.Errorf("page URL = %q", p.URL)
		}
	}
}

func TestProbeSiteNilLabeler(t *testing.T) {
	pr := &Prober{Plan: NewPlan(2, 0, 1)}
	col := pr.ProbeSite(&fakeSite{id: 1})
	for _, p := range col.Pages {
		if p.Class != corpus.MultiMatch && p.Class != 0 {
			t.Errorf("unexpected default class %v", p.Class)
		}
	}
}

func TestProbeAll(t *testing.T) {
	pr := &Prober{Plan: NewPlan(3, 1, 1)}
	sites := []Site{&fakeSite{id: 0}, &fakeSite{id: 1}, &fakeSite{id: 2}}
	corp := pr.ProbeAll(sites)
	if len(corp.Collections) != 3 {
		t.Fatalf("collections = %d", len(corp.Collections))
	}
	if corp.TotalPages() != 12 {
		t.Errorf("TotalPages = %d, want 12", corp.TotalPages())
	}
}
