package probe

import (
	"sort"

	"thor/internal/corpus"
)

// AdaptiveProber extends the fixed probing plan of Section 2 with a
// feedback round, the direction the paper's technical report sketches for
// improving on naive dictionary probing: after the initial probes, the
// most frequent content terms of the collected answer pages — words the
// database demonstrably indexes — are themselves submitted as probes. This
// deepens coverage of the database-specific vocabulary (e.g. domain jargon
// absent from a generic dictionary) and surfaces answer-page classes that
// generic words rarely trigger.
type AdaptiveProber struct {
	// Plan is the initial fixed plan (dictionary + nonsense words).
	Plan Plan
	// Labeler assigns classes to collected pages (see Prober.Labeler).
	Labeler func(site Site, keyword, html string) corpus.Class
	// FeedbackProbes is how many mined terms to probe in the feedback
	// round (default 20).
	FeedbackProbes int
	// MinTermLen skips mined terms shorter than this (default 3).
	MinTermLen int
}

// ProbeSite runs the initial plan and then the feedback round, returning
// the combined collection. Pages from the feedback round are labeled like
// any others.
func (ap *AdaptiveProber) ProbeSite(site Site) *corpus.Collection {
	base := &Prober{Plan: ap.Plan, Labeler: ap.Labeler}
	col := base.ProbeSite(site)

	extra := ap.FeedbackProbes
	if extra <= 0 {
		extra = 20
	}
	minLen := ap.MinTermLen
	if minLen <= 0 {
		minLen = 3
	}
	for _, term := range ap.mineTerms(col, extra, minLen) {
		html, url := site.Query(term)
		page := &corpus.Page{
			SiteID: site.ID(),
			URL:    url,
			Query:  term,
			HTML:   html,
		}
		if ap.Labeler != nil {
			page.Class = ap.Labeler(site, term, html)
		}
		col.Pages = append(col.Pages, page)
	}
	return col
}

// mineTerms returns the top-n content terms of the collected answer pages,
// by total frequency, excluding terms already probed and terms below the
// length cutoff. Only pages that actually answered (multi- or single-
// match) contribute: their content demonstrably overlaps the database.
func (ap *AdaptiveProber) mineTerms(col *corpus.Collection, n, minLen int) []string {
	probed := make(map[string]bool, len(ap.Plan.Keywords()))
	for _, kw := range ap.Plan.Keywords() {
		probed[kw] = true
	}
	freq := make(map[string]int)
	for _, p := range col.Pages {
		if !p.Class.HasPagelets() {
			continue
		}
		for _, tok := range p.Tree().ContentTokens() {
			if len(tok) < minLen || probed[tok] || !isAlphaWord(tok) {
				continue
			}
			freq[tok]++
		}
	}
	terms := make([]string, 0, len(freq))
	for t := range freq {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		if freq[terms[i]] != freq[terms[j]] {
			return freq[terms[i]] > freq[terms[j]]
		}
		return terms[i] < terms[j]
	})
	if len(terms) > n {
		terms = terms[:n]
	}
	return terms
}

func isAlphaWord(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < 'a' || s[i] > 'z' {
			return false
		}
	}
	return len(s) > 0
}
