package probe

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// HTTPSite adapts a live deep-web search form to the prober's Site
// interface: probes become GET requests against the site's search
// endpoint. It is the piece a downstream user points at a real source;
// everything after probing (clustering, identification, partitioning) is
// oblivious to where the HTML came from.
type HTTPSite struct {
	// SiteID is the caller-assigned identifier.
	SiteID int
	// SiteName is the human-readable name (defaults to the host).
	SiteName string
	// SearchURL is the absolute URL of the search endpoint, e.g.
	// "http://books.example.com/search".
	SearchURL string
	// QueryParam is the query-string parameter carrying the keyword
	// (default "q").
	QueryParam string
	// PageParam, when non-empty, enables pagination support: result page
	// n > 1 is requested as PageParam=n, and HTTPSite implements
	// PagedSite. NumPages cannot be known without parsing, so it reports
	// MaxPagesHint (default 1) for multi-page follow-up.
	PageParam string
	// MaxPagesHint bounds NumPages when PageParam is set.
	MaxPagesHint int
	// Client is the HTTP client (default: 15-second-timeout client).
	Client *http.Client
}

var defaultClient = &http.Client{Timeout: 15 * time.Second}

// ID implements Site.
func (h *HTTPSite) ID() int { return h.SiteID }

// Name implements Site.
func (h *HTTPSite) Name() string {
	if h.SiteName != "" {
		return h.SiteName
	}
	if u, err := url.Parse(h.SearchURL); err == nil {
		return u.Host
	}
	return h.SearchURL
}

// Query implements Site: it issues the GET request and returns the
// response body. Network failures yield an empty page (the prober treats
// it like any other response; an empty page clusters with error pages).
func (h *HTTPSite) Query(keyword string) (html, pageURL string) {
	return h.QueryPage(keyword, 1)
}

// QueryPage implements PagedSite when PageParam is configured. The
// request is bounded only by the client's timeout; callers that need
// cancellation use QueryPageContext.
func (h *HTTPSite) QueryPage(keyword string, page int) (html, pageURL string) {
	return h.QueryPageContext(context.Background(), keyword, page)
}

// QueryPageContext is QueryPage with caller-controlled cancellation:
// the request is abandoned as soon as ctx is done, which a crawling
// loop uses to bound per-site stalls independently of the client
// timeout.
func (h *HTTPSite) QueryPageContext(ctx context.Context, keyword string, page int) (html, pageURL string) {
	pageURL = h.buildURL(keyword, page)
	client := h.Client
	if client == nil {
		client = defaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, pageURL, nil)
	if err != nil {
		return "", pageURL
	}
	resp, err := client.Do(req)
	if err != nil {
		return "", pageURL
	}
	//thorlint:allow no-unchecked-error response-body close after a full read has nothing to report
	defer resp.Body.Close()
	// Cap response size: answer pages are small; a runaway body should
	// not exhaust memory.
	const maxBody = 4 << 20
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return "", pageURL
	}
	return string(body), pageURL
}

// NumPages implements PagedSite with the configured hint; without a
// PageParam the site is single-page.
func (h *HTTPSite) NumPages(string) int {
	if h.PageParam == "" || h.MaxPagesHint < 1 {
		return 1
	}
	return h.MaxPagesHint
}

func (h *HTTPSite) buildURL(keyword string, page int) string {
	param := h.QueryParam
	if param == "" {
		param = "q"
	}
	q := url.Values{}
	q.Set(param, keyword)
	if page > 1 && h.PageParam != "" {
		q.Set(h.PageParam, strconv.Itoa(page))
	}
	sep := "?"
	if u, err := url.Parse(h.SearchURL); err == nil && u.RawQuery != "" {
		sep = "&"
	}
	return fmt.Sprintf("%s%s%s", h.SearchURL, sep, q.Encode())
}
