package corpus

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// PageStream is a token-level streaming decoder for the persisted corpus
// format: it yields one page at a time straight off the gzipped JSON
// document, never buffering the whole corpus (Read materializes every
// collection before returning; a paper-scale capture does not fit that
// way). It implements Source; collection boundaries are exposed through
// Collection, and pages of one collection are yielded contiguously in
// their on-disk order — exactly the order Read produces.
type PageStream struct {
	dec    *json.Decoder
	gz     *gzip.Reader
	closer io.Closer // underlying file when opened via OpenStream

	siteID int    // site id of the collection currently being yielded
	name   string // name of that collection

	inCollection bool // between a collection's '{' and '}'
	inPages      bool // between its pages '[' and ']'
	err          error
}

// ReadStream starts streaming a corpus written by Write from r. The
// document header (the format version) is validated eagerly; pages are
// decoded on demand by Next. The version field must precede the
// collections, which is how Write lays the document out.
func ReadStream(r io.Reader) (*PageStream, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("corpus: decompress: %w", err)
	}
	s := &PageStream{dec: json.NewDecoder(gz), gz: gz}
	if err := s.readHeader(); err != nil {
		return nil, err
	}
	return s, nil
}

// OpenStream opens path and streams the corpus persisted there. The
// caller owns the stream and must Close it; Close also closes the file.
func OpenStream(path string) (*PageStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	s, err := ReadStream(f)
	if err != nil {
		//thorlint:allow no-unchecked-error closing a read-only file cannot lose data
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// readHeader consumes the document up to (and including) the opening '['
// of the collections array, validating the format version on the way.
func (s *PageStream) readHeader() error {
	if err := s.expectDelim('{'); err != nil {
		return err
	}
	versionSeen := false
	for {
		tok, err := s.dec.Token()
		if err != nil {
			return fmt.Errorf("corpus: decode: %w", err)
		}
		if d, ok := tok.(json.Delim); ok && d == '}' {
			// A document with no collections at all: nothing to yield.
			if !versionSeen {
				return fmt.Errorf("corpus: unsupported format version %d", 0)
			}
			s.err = io.EOF
			return nil
		}
		key, ok := tok.(string)
		if !ok {
			return fmt.Errorf("corpus: decode: unexpected token %v in header", tok)
		}
		switch key {
		case "version":
			var v int
			if err := s.dec.Decode(&v); err != nil {
				return fmt.Errorf("corpus: decode: %w", err)
			}
			if v != persistVersion {
				return fmt.Errorf("corpus: unsupported format version %d", v)
			}
			versionSeen = true
		case "collections":
			if !versionSeen {
				return fmt.Errorf("corpus: decode: collections precede the version header")
			}
			empty, err := s.startArray()
			if err != nil {
				return err
			}
			if empty {
				s.err = io.EOF // a null collections list: nothing to yield
			}
			return nil
		default:
			if err := s.skipValue(); err != nil {
				return err
			}
		}
	}
}

// Next yields the next page of the stream, in on-disk order across all
// collections, or io.EOF once the document is exhausted. After any error
// the stream is spent and Next keeps returning that error.
func (s *PageStream) Next() (*Page, error) {
	if s.err != nil {
		return nil, s.err
	}
	p, err := s.next()
	if err != nil {
		s.err = err
		return nil, err
	}
	return p, nil
}

func (s *PageStream) next() (*Page, error) {
	for {
		switch {
		case s.inPages:
			if s.dec.More() {
				var pj pageJSON
				if err := s.dec.Decode(&pj); err != nil {
					return nil, fmt.Errorf("corpus: decode: %w", err)
				}
				if pj.Class < 0 || pj.Class >= int(NumClasses) {
					return nil, fmt.Errorf("corpus: page %q has invalid class %d", pj.URL, pj.Class)
				}
				return &Page{
					SiteID: pj.SiteID, URL: pj.URL, Query: pj.Query,
					Class: Class(pj.Class), HTML: pj.HTML,
				}, nil
			}
			if err := s.expectDelim(']'); err != nil {
				return nil, err
			}
			s.inPages = false

		case s.inCollection:
			tok, err := s.dec.Token()
			if err != nil {
				return nil, fmt.Errorf("corpus: decode: %w", err)
			}
			if d, ok := tok.(json.Delim); ok && d == '}' {
				s.inCollection = false
				continue
			}
			key, ok := tok.(string)
			if !ok {
				return nil, fmt.Errorf("corpus: decode: unexpected token %v in collection", tok)
			}
			switch key {
			case "site_id":
				if err := s.dec.Decode(&s.siteID); err != nil {
					return nil, fmt.Errorf("corpus: decode: %w", err)
				}
			case "name":
				if err := s.dec.Decode(&s.name); err != nil {
					return nil, fmt.Errorf("corpus: decode: %w", err)
				}
			case "pages":
				empty, err := s.startArray()
				if err != nil {
					return nil, err
				}
				s.inPages = !empty
			default:
				if err := s.skipValue(); err != nil {
					return nil, err
				}
			}

		default: // inside the collections array, between collections
			if s.dec.More() {
				if err := s.expectDelim('{'); err != nil {
					return nil, err
				}
				s.inCollection = true
				s.siteID, s.name = 0, ""
				continue
			}
			if err := s.expectDelim(']'); err != nil {
				return nil, err
			}
			// Drain any keys after "collections", then the closing '}'.
			for {
				tok, err := s.dec.Token()
				if err != nil {
					return nil, fmt.Errorf("corpus: decode: %w", err)
				}
				if d, ok := tok.(json.Delim); ok && d == '}' {
					return nil, io.EOF
				}
				if _, ok := tok.(string); !ok {
					return nil, fmt.Errorf("corpus: decode: unexpected trailing token %v", tok)
				}
				if err := s.skipValue(); err != nil {
					return nil, err
				}
			}
		}
	}
}

// Collection reports the site id and name of the collection the most
// recently yielded page belongs to (zero values before the first page).
func (s *PageStream) Collection() (siteID int, name string) { return s.siteID, s.name }

// Close releases the underlying file when the stream was opened with
// OpenStream; for ReadStream over a caller-owned reader it is a no-op.
func (s *PageStream) Close() error {
	if s.closer == nil {
		return nil
	}
	c := s.closer
	s.closer = nil
	if err := c.Close(); err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	return nil
}

// startArray consumes the start of an array value. The encoder writes a
// nil slice as JSON null, so null counts as an (empty=true) array.
func (s *PageStream) startArray() (empty bool, err error) {
	tok, err := s.dec.Token()
	if err != nil {
		return false, fmt.Errorf("corpus: decode: %w", err)
	}
	if tok == nil {
		return true, nil
	}
	if d, ok := tok.(json.Delim); ok && d == '[' {
		return false, nil
	}
	return false, fmt.Errorf("corpus: decode: got token %v, want an array", tok)
}

// expectDelim consumes one token and verifies it is the given delimiter.
func (s *PageStream) expectDelim(want json.Delim) error {
	tok, err := s.dec.Token()
	if err != nil {
		return fmt.Errorf("corpus: decode: %w", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return fmt.Errorf("corpus: decode: got token %v, want %q", tok, want)
	}
	return nil
}

// skipValue consumes and discards the value following an unknown key.
func (s *PageStream) skipValue() error {
	var raw json.RawMessage
	if err := s.dec.Decode(&raw); err != nil {
		return fmt.Errorf("corpus: decode: %w", err)
	}
	return nil
}
