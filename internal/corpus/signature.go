package corpus

import (
	"thor/internal/stem"
	"thor/internal/tagtree"
)

// SignatureScratch computes page signatures into one reusable map — the
// serve-path form of Page.TagSignature/Page.ContentSignature for trees
// that are not attached to a cached Page (arena-backed parses of request
// bodies). The map returned by either method is the scratch's own and is
// valid only until the next call; the pooled apply path consumes it before
// releasing the scratch back to its pool.
type SignatureScratch struct {
	counts map[string]int
}

// NewSignatureScratch returns a ready scratch.
func NewSignatureScratch() *SignatureScratch {
	return &SignatureScratch{counts: make(map[string]int, 64)}
}

// TagCounts returns tree's tag-frequency signature, equal to
// tree.TagCounts() but computed into the reusable map.
func (s *SignatureScratch) TagCounts(tree *tagtree.Node) map[string]int {
	clear(s.counts)
	tree.TagCountsInto(s.counts)
	return s.counts
}

// TermCounts returns tree's Porter-stemmed content term signature, equal
// to tree.TermCounts(stem.Stem) but computed into the reusable map.
func (s *SignatureScratch) TermCounts(tree *tagtree.Node) map[string]int {
	clear(s.counts)
	tree.TermCountsInto(stem.Stem, s.counts)
	return s.counts
}
