package corpus

import (
	"strings"
	"testing"
)

const samplePage = `<html><body>
<ul class="nav"><li><a href="/">Home</a></ul>
<table data-qa="pagelet">
  <tr data-qa="object"><td>first</td></tr>
  <tr data-qa="object"><td>second</td></tr>
</table>
</body></html>`

func TestClassString(t *testing.T) {
	cases := map[Class]string{
		MultiMatch:  "multi-match",
		SingleMatch: "single-match",
		NoMatch:     "no-match",
		ErrorPage:   "error",
		Class(42):   "class(42)",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestClassHasPagelets(t *testing.T) {
	if !MultiMatch.HasPagelets() || !SingleMatch.HasPagelets() {
		t.Error("answer classes should bear pagelets")
	}
	if NoMatch.HasPagelets() || ErrorPage.HasPagelets() {
		t.Error("non-answer classes should not bear pagelets")
	}
}

func TestPageTreeCached(t *testing.T) {
	p := &Page{HTML: samplePage}
	t1 := p.Tree()
	t2 := p.Tree()
	if t1 != t2 {
		t.Error("Tree not cached")
	}
	p.InvalidateTree()
	if p.Tree() == t1 {
		t.Error("InvalidateTree did not discard cache")
	}
}

func TestTruthMarkers(t *testing.T) {
	p := &Page{HTML: samplePage, Class: MultiMatch}
	pagelets := p.TruthPagelets()
	if len(pagelets) != 1 || pagelets[0].Tag != "table" {
		t.Fatalf("TruthPagelets = %v", pagelets)
	}
	objs := p.TruthObjects()
	if len(objs) != 2 {
		t.Fatalf("TruthObjects = %d, want 2", len(objs))
	}
	for _, o := range objs {
		if o.Tag != "tr" {
			t.Errorf("object tag = %q", o.Tag)
		}
	}
}

func TestPageSignaturesCached(t *testing.T) {
	p := &Page{HTML: samplePage}
	tags := p.TagSignature()
	if tags["tr"] != 2 || tags["table"] != 1 {
		t.Errorf("TagSignature = %v", tags)
	}
	terms := p.ContentSignature()
	if terms["first"] != 1 || terms["second"] != 1 {
		t.Errorf("ContentSignature = %v", terms)
	}
	// Stemming applied: "homes" would stem to "home" — check via a page.
	p2 := &Page{HTML: `<p>connections connecting</p>`}
	sig := p2.ContentSignature()
	if sig["connect"] != 2 {
		t.Errorf("stemmed signature = %v", sig)
	}
}

func TestPageSize(t *testing.T) {
	p := &Page{HTML: samplePage}
	if p.Size() != len(samplePage) {
		t.Errorf("Size = %d, want %d", p.Size(), len(samplePage))
	}
}

func buildCollection() *Collection {
	col := &Collection{SiteID: 1, Name: "test"}
	classes := []Class{MultiMatch, MultiMatch, SingleMatch, NoMatch, NoMatch, NoMatch, ErrorPage}
	for i, c := range classes {
		col.Pages = append(col.Pages, &Page{
			HTML:  samplePage,
			Class: c,
			Query: strings.Repeat("q", i+1),
		})
	}
	return col
}

func TestCollectionLabels(t *testing.T) {
	col := buildCollection()
	labels := col.Labels()
	if len(labels) != 7 || labels[0] != int(MultiMatch) || labels[6] != int(ErrorPage) {
		t.Errorf("Labels = %v", labels)
	}
}

func TestCollectionByClass(t *testing.T) {
	col := buildCollection()
	if got := len(col.ByClass(MultiMatch)); got != 2 {
		t.Errorf("ByClass(multi) = %d", got)
	}
	if got := len(col.ByClass(NoMatch)); got != 3 {
		t.Errorf("ByClass(nomatch) = %d", got)
	}
}

func TestCollectionPageletBearing(t *testing.T) {
	col := buildCollection()
	if got := len(col.PageletBearing()); got != 3 {
		t.Errorf("PageletBearing = %d, want 3", got)
	}
}

func TestDistributions(t *testing.T) {
	col := buildCollection()
	dist := col.ClassDistribution()
	if dist[MultiMatch] != 2 || dist[SingleMatch] != 1 || dist[NoMatch] != 3 || dist[ErrorPage] != 1 {
		t.Errorf("ClassDistribution = %v", dist)
	}
	corp := &Corpus{Collections: []*Collection{col, buildCollection()}}
	if corp.TotalPages() != 14 {
		t.Errorf("TotalPages = %d", corp.TotalPages())
	}
	cdist := corp.ClassDistribution()
	if cdist[NoMatch] != 6 {
		t.Errorf("corpus distribution = %v", cdist)
	}
}
