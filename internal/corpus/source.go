package corpus

import "io"

// Source is a forward-only iterator over answer pages — the streaming
// counterpart of a []*Page slice. Next returns the next page, or (nil,
// io.EOF) when the stream is exhausted; any other error means the stream
// broke mid-way and the pages already yielded are all the caller will
// get. A Source is single-use and not safe for concurrent Next calls;
// fan-out happens downstream, after a stage has drawn its input.
//
// The ingestion spine is built on this interface: a persisted corpus
// streams in through PageStream, a probed slice adapts through
// SliceSource, and consumers like core.BuildModelFromSource process one
// page at a time, releasing each page's derived views as soon as the
// compact per-page features are extracted.
type Source interface {
	Next() (*Page, error)
}

// SliceSource adapts an in-memory page slice to the Source interface, so
// every streaming consumer also accepts the eager representation. The
// adapter holds only the slice header; it does not copy pages.
type SliceSource struct {
	pages []*Page
	next  int
}

// NewSliceSource returns a Source yielding pages in slice order.
func NewSliceSource(pages []*Page) *SliceSource {
	return &SliceSource{pages: pages}
}

// Next yields the next page, or io.EOF after the last one.
func (s *SliceSource) Next() (*Page, error) {
	if s.next >= len(s.pages) {
		return nil, io.EOF
	}
	p := s.pages[s.next]
	s.next++
	return p, nil
}

// Remaining returns how many pages have not been yielded yet.
func (s *SliceSource) Remaining() int { return len(s.pages) - s.next }

// Collect drains a source into a slice — the inverse of NewSliceSource,
// used by eager callers and tests. On error the pages read so far are
// returned alongside it.
func Collect(src Source) ([]*Page, error) {
	var out []*Page
	for {
		p, err := src.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, p)
	}
}
