package corpus

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// The on-disk corpus format: one gzipped JSON document holding every
// collection with its pages' raw HTML and labels. Trees and signatures are
// reconstructed lazily after loading. The format lets an expensive probing
// run (or a capture of real deep-web pages) be replayed across processes.

type pageJSON struct {
	SiteID int    `json:"site_id"`
	URL    string `json:"url"`
	Query  string `json:"query"`
	Class  int    `json:"class"`
	HTML   string `json:"html"`
}

type collectionJSON struct {
	SiteID int        `json:"site_id"`
	Name   string     `json:"name"`
	Pages  []pageJSON `json:"pages"`
}

type corpusJSON struct {
	Version     int              `json:"version"`
	Collections []collectionJSON `json:"collections"`
}

const persistVersion = 1

// Write serializes the corpus to w as gzipped JSON.
func (c *Corpus) Write(w io.Writer) error {
	doc := corpusJSON{Version: persistVersion}
	for _, col := range c.Collections {
		cj := collectionJSON{SiteID: col.SiteID, Name: col.Name}
		for _, p := range col.Pages {
			cj.Pages = append(cj.Pages, pageJSON{
				SiteID: p.SiteID, URL: p.URL, Query: p.Query,
				Class: int(p.Class), HTML: p.HTML,
			})
		}
		doc.Collections = append(doc.Collections, cj)
	}
	gz := gzip.NewWriter(w)
	encErr := json.NewEncoder(gz).Encode(&doc)
	closeErr := gz.Close() // Close flushes; its error means truncated output
	if encErr != nil {
		return fmt.Errorf("corpus: encode: %w", encErr)
	}
	if closeErr != nil {
		return fmt.Errorf("corpus: compress: %w", closeErr)
	}
	return nil
}

// Read deserializes a corpus written by Write.
func Read(r io.Reader) (*Corpus, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("corpus: decompress: %w", err)
	}
	//thorlint:allow no-unchecked-error read-side gzip close holds no state worth surfacing
	defer gz.Close()
	var doc corpusJSON
	if err := json.NewDecoder(gz).Decode(&doc); err != nil {
		return nil, fmt.Errorf("corpus: decode: %w", err)
	}
	if doc.Version != persistVersion {
		return nil, fmt.Errorf("corpus: unsupported format version %d", doc.Version)
	}
	c := &Corpus{}
	for _, cj := range doc.Collections {
		col := &Collection{SiteID: cj.SiteID, Name: cj.Name}
		for _, pj := range cj.Pages {
			if pj.Class < 0 || pj.Class >= int(NumClasses) {
				return nil, fmt.Errorf("corpus: page %q has invalid class %d", pj.URL, pj.Class)
			}
			col.Pages = append(col.Pages, &Page{
				SiteID: pj.SiteID, URL: pj.URL, Query: pj.Query,
				Class: Class(pj.Class), HTML: pj.HTML,
			})
		}
		c.Collections = append(c.Collections, col)
	}
	return c, nil
}

// WriteFile writes the corpus to path (conventionally *.thor.json.gz).
func (c *Corpus) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("corpus: %w", err)
	}
	werr := c.Write(f)
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = fmt.Errorf("corpus: %w", cerr)
	}
	return werr
}

// ReadFile loads a corpus from path.
func ReadFile(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	//thorlint:allow no-unchecked-error closing a read-only file cannot lose data
	defer f.Close()
	c, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("corpus: reading %s: %w",
			strings.TrimPrefix(path, "./"), err)
	}
	return c, nil
}
