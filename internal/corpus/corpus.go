// Package corpus manages collections of sampled deep-web answer pages: the
// raw HTML, the class label each page was (machine-)labeled with, the
// parsed tag tree, and the ground-truth QA-Pagelet locations used to score
// precision and recall. It corresponds to the paper's local cache of 5,500
// hand-labeled pages (Section 4).
package corpus

import (
	"fmt"
	"sync"

	"thor/internal/htmlx"
	"thor/internal/stem"
	"thor/internal/tagtree"
)

// Class is the answer-page class of a sampled page.
type Class int

const (
	// MultiMatch pages present a list of query matches.
	MultiMatch Class = iota
	// SingleMatch pages present detailed information on one match.
	SingleMatch
	// NoMatch pages report that the query matched nothing.
	NoMatch
	// ErrorPage covers exceptions: server errors, malformed-query
	// complaints, and other failure responses.
	ErrorPage
	// NumClasses is the number of page classes.
	NumClasses
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case MultiMatch:
		return "multi-match"
	case SingleMatch:
		return "single-match"
	case NoMatch:
		return "no-match"
	case ErrorPage:
		return "error"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// HasPagelets reports whether pages of this class contain QA-Pagelets.
func (c Class) HasPagelets() bool { return c == MultiMatch || c == SingleMatch }

// TruthMarkerAttr is the attribute name used by the simulated deep web to
// mark ground truth. THOR's algorithms never read attributes; the marker
// exists only so the evaluation harness can score extractions exactly,
// replacing the paper's hand labeling.
const TruthMarkerAttr = "data-qa"

// Truth marker values.
const (
	TruthPagelet = "pagelet"
	TruthObject  = "object"
)

// Page is one sampled answer page. The derived views (tree and
// signatures) are computed lazily under an internal lock, so a shared
// page may be read from concurrent pipeline runs; callers must treat
// the returned tree and maps as immutable.
type Page struct {
	SiteID int
	URL    string
	Query  string
	HTML   string
	Class  Class

	mu      sync.Mutex // guards the lazy caches below
	tree    *tagtree.Node
	tagSig  map[string]int
	termSig map[string]int
}

// Tree returns the parsed tag tree of the page, parsing and caching it on
// first use.
func (p *Page) Tree() *tagtree.Node {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.treeLocked()
}

func (p *Page) treeLocked() *tagtree.Node {
	if p.tree == nil {
		p.tree = htmlx.Parse(p.HTML)
	}
	return p.tree
}

// InvalidateTree discards the cached tree and signatures (used by tests
// that mutate HTML).
func (p *Page) InvalidateTree() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tree, p.tagSig, p.termSig = nil, nil, nil
}

// ReleaseDerived drops the cached tree and signature maps, returning the
// page to its compact HTML-only form. Streaming pipelines call it once a
// page's sparse vector has been built, so peak residency is bounded by
// the vectors rather than by every page's parsed tree and count maps. The
// views rebuild lazily (and equal the released ones) if touched again,
// but note that a rebuilt tree is a fresh allocation: node pointers taken
// before the release will not match nodes of the rebuilt tree.
func (p *Page) ReleaseDerived() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.tree, p.tagSig, p.termSig = nil, nil, nil
}

// HasDerived reports whether any derived view (tree or signature map)
// is currently cached — the observable side of the release discipline.
func (p *Page) HasDerived() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tree != nil || p.tagSig != nil || p.termSig != nil
}

// TagSignature returns (caching) the page's tag-frequency signature.
func (p *Page) TagSignature() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tagSig == nil {
		p.tagSig = p.treeLocked().TagCounts()
	}
	return p.tagSig
}

// ContentSignature returns (caching) the page's Porter-stemmed content
// term frequency signature.
func (p *Page) ContentSignature() map[string]int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.termSig == nil {
		p.termSig = p.treeLocked().TermCounts(stem.Stem)
	}
	return p.termSig
}

// TruthPagelets returns the ground-truth QA-Pagelet root nodes of the page,
// located via the truth marker attribute.
func (p *Page) TruthPagelets() []*tagtree.Node {
	return p.Tree().FindAll(func(n *tagtree.Node) bool {
		v, ok := n.Attr(TruthMarkerAttr)
		return ok && v == TruthPagelet
	})
}

// TruthObjects returns the ground-truth QA-Object root nodes of the page.
func (p *Page) TruthObjects() []*tagtree.Node {
	return p.Tree().FindAll(func(n *tagtree.Node) bool {
		v, ok := n.Attr(TruthMarkerAttr)
		return ok && v == TruthObject
	})
}

// Size returns the page size in bytes (the length of the raw HTML), the
// statistic used by the size-based baseline and cluster ranking.
func (p *Page) Size() int { return len(p.HTML) }

// Collection is the set of sampled pages for a single deep-web site.
type Collection struct {
	SiteID int
	Name   string
	Pages  []*Page
}

// Labels returns the class label of every page as ints for the entropy
// measure.
func (c *Collection) Labels() []int {
	labels := make([]int, len(c.Pages))
	for i, p := range c.Pages {
		labels[i] = int(p.Class)
	}
	return labels
}

// ByClass returns the pages with the given class label.
func (c *Collection) ByClass(class Class) []*Page {
	var out []*Page
	for _, p := range c.Pages {
		if p.Class == class {
			out = append(out, p)
		}
	}
	return out
}

// PageletBearing returns the pages whose class carries QA-Pagelets — the
// pre-labeled input for the phase-two-in-isolation experiments (Fig. 8/9).
func (c *Collection) PageletBearing() []*Page {
	var out []*Page
	for _, p := range c.Pages {
		if p.Class.HasPagelets() {
			out = append(out, p)
		}
	}
	return out
}

// ClassDistribution returns how many pages of each class the collection
// holds.
func (c *Collection) ClassDistribution() [NumClasses]int {
	var dist [NumClasses]int
	for _, p := range c.Pages {
		dist[p.Class]++
	}
	return dist
}

// Corpus is a set of per-site collections — the unit the experiments
// iterate over (the paper's 50 collections).
type Corpus struct {
	Collections []*Collection
}

// TotalPages returns the number of pages across all collections.
func (c *Corpus) TotalPages() int {
	n := 0
	for _, col := range c.Collections {
		n += len(col.Pages)
	}
	return n
}

// ClassDistribution pools the per-collection distributions.
func (c *Corpus) ClassDistribution() [NumClasses]int {
	var dist [NumClasses]int
	for _, col := range c.Collections {
		d := col.ClassDistribution()
		for i := range dist {
			dist[i] += d[i]
		}
	}
	return dist
}
