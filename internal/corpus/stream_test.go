package corpus

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// randomCorpus fabricates a corpus with randomized shape and page fields,
// including characters that exercise JSON escaping.
func randomCorpus(rng *rand.Rand) *Corpus {
	alphabet := []string{"a", "β", `"`, "\\", "<td>", "\n", "züg", "&amp;", " "}
	randString := func() string {
		var b strings.Builder
		for i := rng.Intn(12); i > 0; i-- {
			b.WriteString(alphabet[rng.Intn(len(alphabet))])
		}
		return b.String()
	}
	c := &Corpus{}
	for s := 0; s < rng.Intn(4); s++ {
		col := &Collection{SiteID: rng.Intn(100), Name: randString()}
		for p := 0; p < rng.Intn(6); p++ {
			col.Pages = append(col.Pages, &Page{
				SiteID: col.SiteID,
				URL:    "http://x/" + randString(),
				Query:  randString(),
				HTML:   "<html><body>" + randString() + "</body></html>",
				Class:  Class(rng.Intn(int(NumClasses))),
			})
		}
		c.Collections = append(c.Collections, col)
	}
	return c
}

// samePage compares the persisted fields of two pages.
func samePage(a, b *Page) bool {
	return a.SiteID == b.SiteID && a.URL == b.URL && a.Query == b.Query &&
		a.HTML == b.HTML && a.Class == b.Class
}

// TestStreamMatchesReadProperty is the decoder-equivalence property: for
// randomized corpora, Write → ReadStream yields exactly the pages of
// Write → Read — same order, same fields, same class labels, and the
// same collection boundaries.
func TestStreamMatchesReadProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		c := randomCorpus(rng)
		var buf bytes.Buffer
		if err := c.Write(&buf); err != nil {
			t.Fatalf("trial %d: Write: %v", trial, err)
		}
		data := buf.Bytes()

		eager, err := Read(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("trial %d: Read: %v", trial, err)
		}
		st, err := ReadStream(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("trial %d: ReadStream: %v", trial, err)
		}

		var eagerPages []*Page
		type meta struct {
			siteID int
			name   string
		}
		var eagerMeta []meta
		for _, col := range eager.Collections {
			for _, p := range col.Pages {
				eagerPages = append(eagerPages, p)
				eagerMeta = append(eagerMeta, meta{col.SiteID, col.Name})
			}
		}

		i := 0
		for {
			p, err := st.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("trial %d: Next: %v", trial, err)
			}
			if i >= len(eagerPages) {
				t.Fatalf("trial %d: stream yielded more than the %d eager pages", trial, len(eagerPages))
			}
			if !samePage(p, eagerPages[i]) {
				t.Fatalf("trial %d: page %d differs: stream %+v, eager %+v", trial, i, p, eagerPages[i])
			}
			siteID, name := st.Collection()
			if siteID != eagerMeta[i].siteID || name != eagerMeta[i].name {
				t.Fatalf("trial %d: page %d collection = (%d,%q), want (%d,%q)",
					trial, i, siteID, name, eagerMeta[i].siteID, eagerMeta[i].name)
			}
			i++
		}
		if i != len(eagerPages) {
			t.Fatalf("trial %d: stream yielded %d pages, eager read %d", trial, i, len(eagerPages))
		}
		// Exhausted streams stay exhausted.
		if _, err := st.Next(); err != io.EOF {
			t.Fatalf("trial %d: Next after EOF = %v", trial, err)
		}
	}
}

// TestStreamRejectsInvalidClassLikeRead pins the rejection path: a
// persisted page with an out-of-range class fails both decoders with the
// same message, and the stream yields exactly the pages before it.
func TestStreamRejectsInvalidClassLikeRead(t *testing.T) {
	c := &Corpus{Collections: []*Collection{{
		SiteID: 1, Name: "s",
		Pages: []*Page{
			{SiteID: 1, URL: "u0", Class: MultiMatch, HTML: "<p>ok</p>"},
			{SiteID: 1, URL: "u1", Class: Class(9), HTML: "<p>bad</p>"},
			{SiteID: 1, URL: "u2", Class: NoMatch, HTML: "<p>after</p>"},
		},
	}}}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}

	_, readErr := Read(bytes.NewReader(buf.Bytes()))
	if readErr == nil {
		t.Fatal("Read accepted an invalid class")
	}
	st, err := ReadStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p, err := st.Next()
	if err != nil || p.URL != "u0" {
		t.Fatalf("first page = %v, %v", p, err)
	}
	_, streamErr := st.Next()
	if streamErr == nil {
		t.Fatal("stream accepted an invalid class")
	}
	if readErr.Error() != streamErr.Error() {
		t.Errorf("rejection messages differ:\n  read:   %v\n  stream: %v", readErr, streamErr)
	}
	// The error is sticky.
	if _, err := st.Next(); err == nil || err == io.EOF {
		t.Errorf("Next after rejection = %v, want the sticky error", err)
	}
}

func TestStreamRejectsWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write([]byte(`{"version":99,"collections":[]}`)); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStream(bytes.NewReader(buf.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "unsupported format version 99") {
		t.Fatalf("ReadStream version error = %v", err)
	}
}

func TestStreamEmptyCorpus(t *testing.T) {
	var buf bytes.Buffer
	if err := (&Corpus{}).Write(&buf); err != nil {
		t.Fatal(err)
	}
	st, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != io.EOF {
		t.Fatalf("empty corpus Next = %v, want io.EOF", err)
	}
}

func TestOpenStream(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.thor.json.gz")
	c := &Corpus{Collections: []*Collection{{SiteID: 3, Name: "site3", Pages: []*Page{
		{SiteID: 3, URL: "u", Query: "q", HTML: "<p>hi</p>", Class: SingleMatch},
	}}}}
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	st, err := OpenStream(path)
	if err != nil {
		t.Fatal(err)
	}
	pages, err := Collect(st)
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 1 || pages[0].URL != "u" {
		t.Fatalf("pages = %v", pages)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := OpenStream(filepath.Join(dir, "absent.gz")); err == nil {
		t.Fatal("OpenStream on a missing file succeeded")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestSliceSourceAndCollect(t *testing.T) {
	pages := []*Page{{URL: "a"}, {URL: "b"}, {URL: "c"}}
	src := NewSliceSource(pages)
	if src.Remaining() != 3 {
		t.Fatalf("Remaining = %d", src.Remaining())
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pages) {
		t.Fatalf("Collect = %v", got)
	}
	if src.Remaining() != 0 {
		t.Fatalf("Remaining after drain = %d", src.Remaining())
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("Next after drain = %v", err)
	}
	if got, err := Collect(NewSliceSource(nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty Collect = %v, %v", got, err)
	}
}

// errSource fails after one page.
type errSource struct{ n int }

func (s *errSource) Next() (*Page, error) {
	if s.n == 0 {
		s.n++
		return &Page{URL: "ok"}, nil
	}
	return nil, fmt.Errorf("boom")
}

func TestCollectPropagatesErrors(t *testing.T) {
	got, err := Collect(&errSource{})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if len(got) != 1 || got[0].URL != "ok" {
		t.Fatalf("partial pages = %v", got)
	}
}

func TestReleaseDerivedRebuildsEqualViews(t *testing.T) {
	p := &Page{HTML: "<html><body><table><tr><td>alpha beta</td></tr></table></body></html>"}
	tree := p.Tree()
	tags := p.TagSignature()
	terms := p.ContentSignature()

	p.ReleaseDerived()
	if reTree := p.Tree(); reTree == tree {
		t.Error("ReleaseDerived kept the cached tree")
	}
	if !reflect.DeepEqual(p.TagSignature(), tags) {
		t.Error("rebuilt tag signature differs")
	}
	if !reflect.DeepEqual(p.ContentSignature(), terms) {
		t.Error("rebuilt content signature differs")
	}
}
