package corpus

import (
	"reflect"
	"testing"
)

var signaturePages = []string{
	`<html><body><table><tr><td>Answer one</td></tr><tr><td>Answer two</td></tr></table></body></html>`,
	`<html><body><div class="result"><p>Searching finds nothing</p></div><ul><li>apples</li><li>apple</li></ul></body></html>`,
	`<html><head><title>T</title></head><body><form><input><select><option>a</option></select></form></body></html>`,
}

// TestSignatureScratchMatchesPage pins the scratch-backed signatures to
// the cached Page ones, and exercises reuse: the same scratch serves
// differently-shaped pages and both signature kinds back to back, so any
// leftover entry from a previous call would show up as a mismatch.
func TestSignatureScratchMatchesPage(t *testing.T) {
	s := NewSignatureScratch()
	for round := 0; round < 2; round++ {
		for i, html := range signaturePages {
			p := &Page{HTML: html}
			tree := p.Tree()
			if got, want := s.TagCounts(tree), p.TagSignature(); !reflect.DeepEqual(got, want) {
				t.Errorf("round %d page %d: scratch tag signature %v, Page %v", round, i, got, want)
			}
			if got, want := s.TermCounts(tree), p.ContentSignature(); !reflect.DeepEqual(got, want) {
				t.Errorf("round %d page %d: scratch term signature %v, Page %v", round, i, got, want)
			}
		}
	}
}
