package corpus

import (
	"bytes"
	"compress/gzip"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

func newGzip(w io.Writer) *gzip.Writer { return gzip.NewWriter(w) }

func TestCorpusRoundTrip(t *testing.T) {
	orig := &Corpus{Collections: []*Collection{buildCollection(), {
		SiteID: 2, Name: "second",
		Pages: []*Page{{SiteID: 2, URL: "http://x/search?q=a", Query: "a",
			Class: SingleMatch, HTML: samplePage}},
	}}}

	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got.Collections) != 2 {
		t.Fatalf("collections = %d", len(got.Collections))
	}
	if got.TotalPages() != orig.TotalPages() {
		t.Errorf("pages = %d, want %d", got.TotalPages(), orig.TotalPages())
	}
	for ci, col := range got.Collections {
		o := orig.Collections[ci]
		if col.SiteID != o.SiteID || col.Name != o.Name {
			t.Errorf("collection %d identity lost", ci)
		}
		for pi, p := range col.Pages {
			op := o.Pages[pi]
			if p.HTML != op.HTML || p.Class != op.Class || p.URL != op.URL || p.Query != op.Query {
				t.Errorf("page %d/%d fields lost", ci, pi)
			}
		}
	}
	// Loaded pages parse and expose ground truth like the originals.
	p := got.Collections[0].Pages[0]
	if len(p.TruthPagelets()) != 1 {
		t.Errorf("loaded page lost truth markers")
	}
}

func TestCorpusFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.thor.json.gz")
	orig := &Corpus{Collections: []*Collection{buildCollection()}}
	if err := orig.WriteFile(path); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if got.TotalPages() != orig.TotalPages() {
		t.Errorf("pages = %d", got.TotalPages())
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not gzip at all")); err == nil {
		t.Error("Read accepted non-gzip input")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.gz")); err == nil {
		t.Error("ReadFile accepted missing file")
	}
}

func TestReadRejectsBadClass(t *testing.T) {
	// Serialize, then corrupt the class beyond the valid range via a
	// manual document.
	var buf bytes.Buffer
	orig := &Corpus{Collections: []*Collection{{
		SiteID: 1,
		Pages:  []*Page{{HTML: "<p>x</p>", Class: MultiMatch}},
	}}}
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	// Valid write reads fine; now fabricate an invalid class by abusing
	// the JSON layer directly.
	bad := `{"version":1,"collections":[{"site_id":1,"name":"x","pages":[{"class":99,"html":"<p>x</p>"}]}]}`
	var gz bytes.Buffer
	w := newGzip(&gz)
	w.Write([]byte(bad))
	w.Close()
	if _, err := Read(&gz); err == nil {
		t.Error("Read accepted out-of-range class")
	}
}
