package stem

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestStemKnownVectors checks the canonical examples from Porter's 1980
// paper, step by step.
func TestStemKnownVectors(t *testing.T) {
	cases := []struct{ in, want string }{
		// Step 1a
		{"caresses", "caress"},
		{"ponies", "poni"},
		{"ties", "ti"},
		{"caress", "caress"},
		{"cats", "cat"},
		// Step 1b
		{"feed", "feed"},
		{"agreed", "agre"},
		{"plastered", "plaster"},
		{"bled", "bled"},
		{"motoring", "motor"},
		{"sing", "sing"},
		{"conflated", "conflat"},
		{"troubled", "troubl"},
		{"sized", "size"},
		{"hopping", "hop"},
		{"tanned", "tan"},
		{"falling", "fall"},
		{"hissing", "hiss"},
		{"fizzed", "fizz"},
		{"failing", "fail"},
		{"filing", "file"},
		// Step 1c
		{"happy", "happi"},
		{"sky", "sky"},
		// Step 2
		{"relational", "relat"},
		{"conditional", "condit"},
		{"rational", "ration"},
		{"valenci", "valenc"},
		{"hesitanci", "hesit"},
		{"digitizer", "digit"},
		{"conformabli", "conform"},
		{"radicalli", "radic"},
		{"differentli", "differ"},
		{"vileli", "vile"},
		{"analogousli", "analog"},
		{"vietnamization", "vietnam"},
		{"predication", "predic"},
		{"operator", "oper"},
		{"feudalism", "feudal"},
		{"decisiveness", "decis"},
		{"hopefulness", "hope"},
		{"callousness", "callous"},
		{"formaliti", "formal"},
		{"sensitiviti", "sensit"},
		{"sensibiliti", "sensibl"},
		// Step 3
		{"triplicate", "triplic"},
		{"formative", "form"},
		{"formalize", "formal"},
		{"electriciti", "electr"},
		{"electrical", "electr"},
		{"hopeful", "hope"},
		{"goodness", "good"},
		// Step 4
		{"revival", "reviv"},
		{"allowance", "allow"},
		{"inference", "infer"},
		{"airliner", "airlin"},
		{"gyroscopic", "gyroscop"},
		{"adjustable", "adjust"},
		{"defensible", "defens"},
		{"irritant", "irrit"},
		{"replacement", "replac"},
		{"adjustment", "adjust"},
		{"dependent", "depend"},
		{"adoption", "adopt"},
		{"communism", "commun"},
		{"activate", "activ"},
		{"angulariti", "angular"},
		{"homologous", "homolog"},
		{"effective", "effect"},
		{"bowdlerize", "bowdler"},
		// Step 5a
		{"probate", "probat"},
		{"rate", "rate"},
		{"cease", "ceas"},
		// Step 5b
		{"controll", "control"},
		{"roll", "roll"},
	}
	for _, c := range cases {
		if got := Stem(c.in); got != c.want {
			t.Errorf("Stem(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStemWholeWords(t *testing.T) {
	// End-to-end words from running text, as stemmed by reference
	// implementations.
	cases := []struct{ in, want string }{
		{"connected", "connect"},
		{"connecting", "connect"},
		{"connection", "connect"},
		{"connections", "connect"},
		{"running", "run"},
		{"flying", "fly"},
		{"dies", "di"},
		{"agreement", "agreement"}, // m condition fails for -ment here
		{"argument", "argument"},
	}
	for _, c := range cases {
		if got := Stem(c.in); got != c.want {
			t.Errorf("Stem(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestStemShortWordsUnchanged(t *testing.T) {
	for _, w := range []string{"a", "is", "be", "at", "xy"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemLowercases(t *testing.T) {
	if got := Stem("Running"); got != "run" {
		t.Errorf("Stem(Running) = %q, want run", got)
	}
	if got := Stem("CATS"); got != "cat" {
		t.Errorf("Stem(CATS) = %q", got)
	}
}

func TestStemNonAlphabeticPassThrough(t *testing.T) {
	for _, w := range []string{"1999", "3rd", "foo-bar", "a1b2"} {
		if got := Stem(w); got != strings.ToLower(w) {
			t.Errorf("Stem(%q) = %q, want lowercased input", w, got)
		}
	}
}

// TestStemProperties: stems are non-empty, lowercase, and never longer
// than the (lowercased) input plus one character (step 1b can append 'e').
func TestStemProperties(t *testing.T) {
	property := func(w string) bool {
		got := Stem(w)
		if got == "" && w != "" {
			return false
		}
		if got != strings.ToLower(got) {
			return false
		}
		return len(got) <= len(w)+1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestStemMergesInflections: the purpose of stemming in THOR is that
// morphological variants of a content word land on one term.
func TestStemMergesInflections(t *testing.T) {
	groups := [][]string{
		{"connect", "connected", "connecting", "connection", "connections"},
		{"adjust", "adjustment", "adjustable"},
		{"relate", "relational"},
	}
	for _, g := range groups {
		stem0 := Stem(g[0])
		for _, w := range g[1:] {
			if got := Stem(w); got != stem0 {
				t.Errorf("Stem(%q) = %q, want %q (same as %q)", w, got, stem0, g[0])
			}
		}
	}
}
