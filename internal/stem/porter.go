// Package stem implements Porter's suffix-stripping algorithm (M.F. Porter,
// "An algorithm for suffix stripping", Program 14(3), 1980). THOR applies it
// to content terms before building content signatures (Section 3.1.2) and
// subtree term vectors (Section 3.2.1).
package stem

import "strings"

// Stem returns the Porter stem of word. Input is lowercased first; words
// shorter than three letters are returned unchanged (after lowercasing), as
// in Porter's reference implementation.
func Stem(word string) string {
	w := strings.ToLower(word)
	if len(w) <= 2 {
		return w
	}
	for i := 0; i < len(w); i++ {
		c := w[i]
		if c < 'a' || c > 'z' {
			return w // non-alphabetic tokens (numbers, mixed) pass through
		}
	}
	b := []byte(w)
	b = step1a(b)
	b = step1b(b)
	b = step1c(b)
	b = step2(b)
	b = step3(b)
	b = step4(b)
	b = step5a(b)
	b = step5b(b)
	return string(b)
}

// isConsonant reports whether b[i] is a consonant in Porter's sense:
// letters other than a,e,i,o,u; 'y' is a consonant when it follows a vowel
// position (i.e. when preceded by a consonant it acts as a vowel).
func isConsonant(b []byte, i int) bool {
	switch b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !isConsonant(b, i-1)
	default:
		return true
	}
}

// measure computes m, the number of vowel-consonant sequences in b[:end].
func measure(b []byte, end int) int {
	m := 0
	i := 0
	// Skip initial consonants.
	for i < end && isConsonant(b, i) {
		i++
	}
	for i < end {
		// Vowel run.
		for i < end && !isConsonant(b, i) {
			i++
		}
		if i >= end {
			break
		}
		m++
		// Consonant run.
		for i < end && isConsonant(b, i) {
			i++
		}
	}
	return m
}

// containsVowel reports whether b[:end] contains a vowel.
func containsVowel(b []byte, end int) bool {
	for i := 0; i < end; i++ {
		if !isConsonant(b, i) {
			return true
		}
	}
	return false
}

// doubleConsonant reports whether b ends with a double consonant.
func doubleConsonant(b []byte) bool {
	n := len(b)
	if n < 2 || b[n-1] != b[n-2] {
		return false
	}
	return isConsonant(b, n-1)
}

// cvc reports whether b[:end] ends consonant-vowel-consonant where the
// final consonant is not w, x, or y.
func cvc(b []byte, end int) bool {
	if end < 3 {
		return false
	}
	if !isConsonant(b, end-3) || isConsonant(b, end-2) || !isConsonant(b, end-1) {
		return false
	}
	switch b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

func hasSuffix(b []byte, s string) bool {
	return len(b) >= len(s) && string(b[len(b)-len(s):]) == s
}

// replaceSuffix replaces suffix s with r when the stem before s has
// measure > m. It returns the (possibly new) word and whether a replacement
// occurred. Matching alone (without the measure condition holding) still
// counts as "this rule fired" for rule-ordering purposes, so callers that
// need that distinction test hasSuffix first.
func replaceSuffix(b []byte, s, r string, m int) ([]byte, bool) {
	if !hasSuffix(b, s) {
		return b, false
	}
	stemEnd := len(b) - len(s)
	if measure(b, stemEnd) > m {
		return append(b[:stemEnd], r...), true
	}
	return b, true // matched but condition failed: stop trying later rules
}

func step1a(b []byte) []byte {
	switch {
	case hasSuffix(b, "sses"):
		return b[:len(b)-2]
	case hasSuffix(b, "ies"):
		return b[:len(b)-2]
	case hasSuffix(b, "ss"):
		return b
	case hasSuffix(b, "s"):
		return b[:len(b)-1]
	}
	return b
}

func step1b(b []byte) []byte {
	if hasSuffix(b, "eed") {
		if measure(b, len(b)-3) > 0 {
			return b[:len(b)-1]
		}
		return b
	}
	stripped := false
	if hasSuffix(b, "ed") && containsVowel(b, len(b)-2) {
		b = b[:len(b)-2]
		stripped = true
	} else if hasSuffix(b, "ing") && containsVowel(b, len(b)-3) {
		b = b[:len(b)-3]
		stripped = true
	}
	if !stripped {
		return b
	}
	switch {
	case hasSuffix(b, "at"), hasSuffix(b, "bl"), hasSuffix(b, "iz"):
		return append(b, 'e')
	case doubleConsonant(b) && !hasSuffix(b, "l") && !hasSuffix(b, "s") && !hasSuffix(b, "z"):
		return b[:len(b)-1]
	case measure(b, len(b)) == 1 && cvc(b, len(b)):
		return append(b, 'e')
	}
	return b
}

func step1c(b []byte) []byte {
	if hasSuffix(b, "y") && containsVowel(b, len(b)-1) {
		b[len(b)-1] = 'i'
	}
	return b
}

var step2Rules = []struct{ suffix, repl string }{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"},
	{"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"},
	{"fulness", "ful"}, {"ousness", "ous"}, {"aliti", "al"},
	{"iviti", "ive"}, {"biliti", "ble"},
}

func step2(b []byte) []byte {
	for _, r := range step2Rules {
		if nb, matched := replaceSuffix(b, r.suffix, r.repl, 0); matched {
			return nb
		}
	}
	return b
}

var step3Rules = []struct{ suffix, repl string }{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"},
	{"iciti", "ic"}, {"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

func step3(b []byte) []byte {
	for _, r := range step3Rules {
		if nb, matched := replaceSuffix(b, r.suffix, r.repl, 0); matched {
			return nb
		}
	}
	return b
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func step4(b []byte) []byte {
	for _, s := range step4Suffixes {
		if !hasSuffix(b, s) {
			continue
		}
		stemEnd := len(b) - len(s)
		if s == "ion" {
			// (m>1 and (*S or *T)) ION ->
			if stemEnd > 0 && (b[stemEnd-1] == 's' || b[stemEnd-1] == 't') && measure(b, stemEnd) > 1 {
				return b[:stemEnd]
			}
			return b
		}
		if measure(b, stemEnd) > 1 {
			return b[:stemEnd]
		}
		return b
	}
	return b
}

func step5a(b []byte) []byte {
	if !hasSuffix(b, "e") {
		return b
	}
	stemEnd := len(b) - 1
	m := measure(b, stemEnd)
	if m > 1 || (m == 1 && !cvc(b, stemEnd)) {
		return b[:stemEnd]
	}
	return b
}

func step5b(b []byte) []byte {
	if hasSuffix(b, "ll") && measure(b, len(b)) > 1 {
		return b[:len(b)-1]
	}
	return b
}
